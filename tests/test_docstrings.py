"""Docstring-coverage gate for the public runtime, TMR and faultsim APIs.

``docs/RUNTIME.md`` documents the execution runtime; this gate keeps the
in-code reference complete: every public module, class, function and
method in :mod:`repro.runtime`, :mod:`repro.tmr`, :mod:`repro.faultsim`,
:mod:`repro.stats` and :mod:`repro.backends` must carry a docstring.  The check is AST-based
(the same contract an ``interrogate`` run with ``--ignore-private``
enforces) so it needs no third-party dependency and runs in tier-1 CI on
every push.

Definition of *public* used here:

* modules: every ``.py`` file in the gated packages (including
  ``__init__.py`` and private-named modules — they document subsystems);
* classes / functions: top-level ``def``/``class`` whose name has no
  leading underscore — plus private helpers' signatures are deliberately
  exempt, *except* that we still require docstrings on private top-level
  functions (they are this project's convention, see
  ``repro.tmr.planner._next_increment``);
* methods: ``def`` directly inside a public class, except dunders —
  including ``__init__``/``__post_init__``, because this codebase follows
  the numpydoc convention of documenting constructor parameters in the
  *class* docstring (which is gated).
"""

from __future__ import annotations

import ast
from pathlib import Path

import pytest

import repro.backends
import repro.faultsim
import repro.runtime
import repro.stats
import repro.tmr

#: Packages whose public APIs docs/RUNTIME.md promises are documented.
GATED_PACKAGES = (
    repro.runtime,
    repro.tmr,
    repro.faultsim,
    repro.stats,
    repro.backends,
)



def _package_modules():
    for package in GATED_PACKAGES:
        root = Path(package.__file__).parent
        for path in sorted(root.rglob("*.py")):
            yield package.__name__, path


def _missing_docstrings(path: Path) -> list[str]:
    """Names in ``path`` (module-relative) lacking a docstring."""
    tree = ast.parse(path.read_text(encoding="utf-8"))
    missing = []
    if ast.get_docstring(tree) is None:
        missing.append("<module>")
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if ast.get_docstring(node) is None:
                missing.append(node.name)
        elif isinstance(node, ast.ClassDef) and not node.name.startswith("_"):
            if ast.get_docstring(node) is None:
                missing.append(node.name)
            for member in node.body:
                if not isinstance(member, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    continue
                name = member.name
                if name.startswith("_"):
                    # Private helpers and dunders (constructor parameters
                    # live in the class docstring, numpydoc-style).
                    continue
                if ast.get_docstring(member) is None:
                    missing.append(f"{node.name}.{name}")
    return missing


@pytest.mark.parametrize(
    "package_name,path",
    list(_package_modules()),
    ids=lambda value: str(value).split("/src/")[-1] if "/" in str(value) else value,
)
def test_public_api_fully_documented(package_name, path):
    missing = _missing_docstrings(path)
    assert not missing, (
        f"{path} is missing docstrings for: {', '.join(missing)} "
        "(docs/RUNTIME.md promises a fully documented runtime/tmr API)"
    )


def test_gate_actually_covers_both_packages():
    """Regression guard: the parametrization must see every module of
    the gated packages (an import/layout change silently shrinking the
    gate would otherwise go unnoticed)."""
    modules = list(_package_modules())
    runtime = [p for name, p in modules if name == "repro.runtime"]
    tmr = [p for name, p in modules if name == "repro.tmr"]
    faultsim = [p for name, p in modules if name == "repro.faultsim"]
    stats = [p for name, p in modules if name == "repro.stats"]
    backends = [p for name, p in modules if name == "repro.backends"]
    assert {p.name for p in runtime} == {
        "__init__.py", "chaos.py", "checkpoint.py", "distributed.py",
        "engine.py", "hashing.py", "progress.py", "queue.py", "retry.py",
        "tasks.py",
    }
    assert {p.name for p in tmr} == {
        "__init__.py", "cost.py", "planner.py", "schemes.py",
    }
    assert {p.name for p in faultsim} == {
        "__init__.py", "abft.py", "campaign.py", "model.py",
        "neuron_level.py", "operation_level.py", "protection.py",
        "replay.py", "sampling.py", "sites.py",
    }
    assert {p.name for p in stats} == {
        "__init__.py", "adaptive.py", "intervals.py", "sequential.py",
    }
    assert {p.name for p in backends} == {
        "__init__.py", "base.py", "optimized.py", "reference.py",
        "torch_backend.py",
    }
