"""Parity tests: figs 3-5 call paths through the task engine.

Each analysis behind figs 3-5 must produce **bit-identical** results under
three execution regimes:

1. the historical pre-engine serial loop (frozen reference copies below,
   built directly on :func:`repro.faultsim.run_point`),
2. the task engine with ``workers=1`` (the serial in-process path), and
3. the task engine with multiple workers (``REPRO_PARITY_WORKERS``,
   default 4 — CI's tier-2 job re-runs this module with 2).

The TMR planner adds a fourth regime: ``speculative=True``
(:class:`TestFig5Speculative`), which evaluates several candidates of the
planner's deterministic growth chain concurrently.  Because the paper's
increment rule never consults a measured accuracy, speculation must be
**result-identical** to the serial heuristic — same plan, iterations,
convergence and history — with speculation off *and* on; CI's tier-2 job
re-runs both against the frozen references.

Equality is asserted on full serialized payloads, including derived
artifacts that are sensitive to any reordering: the
``VulnerabilityReport.ranked()`` layer order and the per-iteration
``TmrPlanResult.history`` of the planner.
"""

from __future__ import annotations

import os

import pytest

from repro.analysis import layer_vulnerability, operation_type_sensitivity
from repro.analysis.vulnerability import LayerVulnerability, VulnerabilityReport
from repro.analysis.optype import OpTypeSensitivity
from repro.faultsim import CampaignConfig, ProtectionPlan
from repro.faultsim.campaign import run_point
from repro.runtime import CampaignEngine
from repro.tmr import TmrPlanResult, plan_tmr, run_tmr_schemes, tmr_overhead_energy
from repro.tmr.cost import OpCostModel
from repro.tmr.planner import _next_increment

#: Worker count for the multi-worker regime (CI tier-2 sets this to 2).
PARITY_WORKERS = int(os.environ.get("REPRO_PARITY_WORKERS", "4"))

#: Mid-cliff operating point of the tiny fixture model (see
#: tests/test_analysis_tmr.py).
CLIFF_BER = 1e-4

CONFIG = CampaignConfig(seeds=(0, 1), batch_size=24, max_samples=24)


# --- frozen pre-engine serial references ----------------------------------------
def serial_layer_vulnerability(qmodel, x, labels, ber, config):
    """The pre-engine Fig. 3 loop, verbatim: one run_point per plan."""
    layer_names = [layer.name for layer in qmodel.injectable_layers()]
    baseline = run_point(qmodel, x, labels, ber, config=config)
    counts = qmodel.layer_op_counts()
    results = []
    for name in layer_names:
        plan = ProtectionPlan.fault_free_layer(name, layer_names)
        point = run_point(qmodel, x, labels, ber, config=config, protection=plan)
        results.append(
            LayerVulnerability(
                layer=name,
                accuracy_when_fault_free=point.mean_accuracy,
                vulnerability_factor=point.mean_accuracy - baseline.mean_accuracy,
                muls=counts[name].muls,
                adds=counts[name].adds,
            )
        )
    return VulnerabilityReport(
        ber=ber, baseline_accuracy=baseline.mean_accuracy, layers=results
    )


def serial_operation_type_sensitivity(qmodel, x, labels, ber, config):
    """The pre-engine Fig. 4 triple, verbatim."""
    layer_names = [layer.name for layer in qmodel.injectable_layers()]
    baseline = run_point(qmodel, x, labels, ber, config=config)
    muls_free = run_point(
        qmodel, x, labels, ber, config=config,
        protection=ProtectionPlan.fault_free_muls(layer_names),
    )
    adds_free = run_point(
        qmodel, x, labels, ber, config=config,
        protection=ProtectionPlan.fault_free_adds(layer_names),
    )
    return OpTypeSensitivity(
        ber=ber,
        baseline_accuracy=baseline.mean_accuracy,
        accuracy_muls_fault_free=muls_free.mean_accuracy,
        accuracy_adds_fault_free=adds_free.mean_accuracy,
    )


def serial_plan_tmr(
    qmodel, x, labels, ber, target_accuracy, ranking, config, step=0.5,
    max_iterations=400,
):
    """The pre-engine Fig. 5 planner loop, verbatim (run_point inner loop)."""
    cost_model = OpCostModel(width=qmodel.config.width)
    plan = ProtectionPlan()
    history, converged, accuracy, iterations = [], False, 0.0, 0
    for iterations in range(1, max_iterations + 1):
        point = run_point(qmodel, x, labels, ber, config=config, protection=plan)
        accuracy = point.mean_accuracy
        overhead = tmr_overhead_energy(qmodel, plan, cost_model)
        history.append(
            {"iteration": iterations, "accuracy": accuracy, "overhead": overhead}
        )
        if accuracy >= target_accuracy:
            converged = True
            break
        if not _next_increment(qmodel, plan, ranking, step):
            break
    return TmrPlanResult(
        plan=plan,
        achieved_accuracy=accuracy,
        overhead_energy=tmr_overhead_energy(qmodel, plan, cost_model),
        target_accuracy=target_accuracy,
        ber=ber,
        iterations=iterations,
        converged=converged,
        history=history,
    )


def plan_summary(result):
    """Everything observable about a planner run, for exact comparison."""
    return {
        "iterations": result.iterations,
        "converged": result.converged,
        "achieved_accuracy": result.achieved_accuracy,
        "overhead_energy": result.overhead_energy,
        "history": result.history,
        "fractions": dict(result.plan.fractions),
    }


# --- Fig. 3: layer-wise vulnerability -------------------------------------------
class TestFig3Parity:
    def test_engine_matches_serial_reference(self, tiny_quantized, tiny_eval):
        qm, _ = tiny_quantized
        x, y = tiny_eval
        reference = serial_layer_vulnerability(qm, x, y, CLIFF_BER, CONFIG)
        one = layer_vulnerability(
            qm, x, y, CLIFF_BER, config=CONFIG, engine=CampaignEngine(workers=1)
        )
        many = layer_vulnerability(
            qm, x, y, CLIFF_BER, config=CONFIG,
            engine=CampaignEngine(workers=PARITY_WORKERS),
        )
        assert one.to_dict() == reference.to_dict()
        assert many.to_dict() == reference.to_dict()

    def test_ranked_order_identical(self, tiny_quantized, tiny_eval):
        qm, _ = tiny_quantized
        x, y = tiny_eval
        reference = serial_layer_vulnerability(qm, x, y, CLIFF_BER, CONFIG)
        many = layer_vulnerability(
            qm, x, y, CLIFF_BER, config=CONFIG,
            engine=CampaignEngine(workers=PARITY_WORKERS),
        )
        assert [lv.layer for lv in many.ranked()] == [
            lv.layer for lv in reference.ranked()
        ]
        assert [lv.vulnerability_factor for lv in many.ranked()] == [
            lv.vulnerability_factor for lv in reference.ranked()
        ]

    def test_default_engine_is_serial_path(self, tiny_quantized, tiny_eval):
        """Calling without engine= must equal the explicit serial engine."""
        qm, _ = tiny_quantized
        x, y = tiny_eval
        bare = layer_vulnerability(qm, x, y, CLIFF_BER, config=CONFIG)
        reference = serial_layer_vulnerability(qm, x, y, CLIFF_BER, CONFIG)
        assert bare.to_dict() == reference.to_dict()

    def test_checkpoint_resume_replays_batch(
        self, tiny_quantized, tiny_eval, tmp_path
    ):
        """A resumed engine serves the whole Fig. 3 batch from checkpoint,
        bit-identical."""
        qm, _ = tiny_quantized
        x, y = tiny_eval
        ckpt = tmp_path / "campaign.json"
        first = layer_vulnerability(
            qm, x, y, CLIFF_BER, config=CONFIG,
            engine=CampaignEngine(workers=PARITY_WORKERS, checkpoint_path=ckpt),
        )
        resumed_engine = CampaignEngine(workers=1, checkpoint_path=ckpt, resume=True)
        again = layer_vulnerability(
            qm, x, y, CLIFF_BER, config=CONFIG, engine=resumed_engine
        )
        assert again.to_dict() == first.to_dict()
        assert resumed_engine.last_stats.computed_units == 0
        n_plans = len(qm.injectable_layers()) + 1
        assert resumed_engine.last_stats.cached_units == n_plans * len(CONFIG.seeds)


# --- Fig. 4: operation-type sensitivity -----------------------------------------
class TestFig4Parity:
    def test_engine_matches_serial_reference(self, tiny_quantized, tiny_eval):
        qm, _ = tiny_quantized
        x, y = tiny_eval
        reference = serial_operation_type_sensitivity(qm, x, y, CLIFF_BER, CONFIG)
        one = operation_type_sensitivity(
            qm, x, y, CLIFF_BER, config=CONFIG, engine=CampaignEngine(workers=1)
        )
        many = operation_type_sensitivity(
            qm, x, y, CLIFF_BER, config=CONFIG,
            engine=CampaignEngine(workers=PARITY_WORKERS),
        )
        assert one.to_dict() == reference.to_dict()
        assert many.to_dict() == reference.to_dict()

    def test_winograd_model_parity(self, tiny_quantized, tiny_eval):
        qm_st, qm_wg = tiny_quantized
        x, y = tiny_eval
        reference = serial_operation_type_sensitivity(qm_wg, x, y, CLIFF_BER, CONFIG)
        many = operation_type_sensitivity(
            qm_wg, x, y, CLIFF_BER, config=CONFIG,
            engine=CampaignEngine(workers=PARITY_WORKERS),
        )
        assert many.to_dict() == reference.to_dict()


# --- Fig. 5: fine-grained TMR planner -------------------------------------------
class TestFig5Parity:
    TARGET = 0.85
    HARD_BER = 5e-4

    def _ranking(self, qmodel):
        return [(l.name, 1.0) for l in qmodel.injectable_layers()]

    def test_planner_engine_matches_serial_reference(
        self, tiny_quantized, tiny_eval
    ):
        qm, _ = tiny_quantized
        x, y = tiny_eval
        ranking = self._ranking(qm)
        reference = serial_plan_tmr(
            qm, x, y, self.HARD_BER, self.TARGET, ranking, CONFIG, step=0.5
        )
        one = plan_tmr(
            qm, x, y, self.HARD_BER, self.TARGET, ranking, config=CONFIG,
            step=0.5, engine=CampaignEngine(workers=1),
        )
        many = plan_tmr(
            qm, x, y, self.HARD_BER, self.TARGET, ranking, config=CONFIG,
            step=0.5, engine=CampaignEngine(workers=PARITY_WORKERS),
        )
        assert plan_summary(one) == plan_summary(reference)
        assert plan_summary(many) == plan_summary(reference)
        assert reference.iterations > 1, "regression guard: goal must be non-trivial"

    def test_planner_convergence_regression_seed(
        self, tiny_quantized, tiny_eval, tmr_regression_seed
    ):
        """Convergence under the pinned regression seed (see
        tests/_helpers.py TMR_REGRESSION_SEED) is engine-invariant
        (iterations, converged, fractions, full history)."""
        qm, _ = tiny_quantized
        x, y = tiny_eval
        config = CampaignConfig(
            seeds=(tmr_regression_seed,), batch_size=24, max_samples=24
        )
        ranking = self._ranking(qm)
        reference = serial_plan_tmr(
            qm, x, y, self.HARD_BER, self.TARGET, ranking, config, step=0.5
        )
        engine_result = plan_tmr(
            qm, x, y, self.HARD_BER, self.TARGET, ranking, config=config,
            step=0.5, engine=CampaignEngine(workers=PARITY_WORKERS),
        )
        assert plan_summary(engine_result) == plan_summary(reference)

    def test_speculative_off_matches_frozen_reference(
        self, tiny_quantized, tiny_eval
    ):
        """The acceptance gate: with speculative=False the planner is the
        paper's heuristic, bit-identical to the pre-engine serial loop."""
        qm, _ = tiny_quantized
        x, y = tiny_eval
        ranking = self._ranking(qm)
        reference = serial_plan_tmr(
            qm, x, y, self.HARD_BER, self.TARGET, ranking, CONFIG, step=0.5
        )
        off = plan_tmr(
            qm, x, y, self.HARD_BER, self.TARGET, ranking, config=CONFIG,
            step=0.5, speculative=False,
            engine=CampaignEngine(workers=PARITY_WORKERS),
        )
        assert plan_summary(off) == plan_summary(reference)

    def test_scheme_curves_engine_parity(self, tiny_quantized, tiny_eval):
        """run_tmr_schemes (the full Fig. 5 pipeline) is engine-invariant,
        including every TmrPlanResult.history."""
        qm_st, qm_wg = tiny_quantized
        x, y = tiny_eval
        fault_free = qm_st.evaluate(x[:24], y[:24])
        goals = [fault_free * 0.8]
        serial_curves = run_tmr_schemes(
            qm_st, qm_wg, x, y, CLIFF_BER, goals, config=CONFIG, step=0.5
        )
        engine_curves = run_tmr_schemes(
            qm_st, qm_wg, x, y, CLIFF_BER, goals, config=CONFIG, step=0.5,
            engine=CampaignEngine(workers=PARITY_WORKERS),
        )
        assert set(engine_curves) == set(serial_curves)
        for name in serial_curves:
            assert engine_curves[name].to_dict() == serial_curves[name].to_dict()
            histories_serial = [r.history for r in serial_curves[name].results]
            histories_engine = [r.history for r in engine_curves[name].results]
            assert histories_engine == histories_serial


# --- Fig. 5: speculative planner parallelism ------------------------------------
class TestFig5Speculative:
    """Speculative planning is result-identical to the serial heuristic.

    The increment rule is accuracy-independent, so the candidate chain the
    speculative planner evaluates ahead of time is exactly the serial
    trajectory; only overshoot evaluations past the convergence point
    differ (they are discarded and merely visible as extra checkpoint
    entries).
    """

    TARGET = 0.85
    HARD_BER = 5e-4

    def _ranking(self, qmodel):
        return [(l.name, 1.0) for l in qmodel.injectable_layers()]

    def _reference(self, qm, x, y, **kwargs):
        return serial_plan_tmr(
            qm, x, y, self.HARD_BER, self.TARGET, self._ranking(qm), CONFIG,
            step=0.5, **kwargs,
        )

    def test_speculative_matches_serial_reference(self, tiny_quantized, tiny_eval):
        qm, _ = tiny_quantized
        x, y = tiny_eval
        reference = self._reference(qm, x, y)
        for lookahead in (None, 1, 2, 5):
            speculative = plan_tmr(
                qm, x, y, self.HARD_BER, self.TARGET, self._ranking(qm),
                config=CONFIG, step=0.5, speculative=True, lookahead=lookahead,
                engine=CampaignEngine(workers=PARITY_WORKERS),
            )
            assert plan_summary(speculative) == plan_summary(reference), (
                f"lookahead={lookahead}"
            )
        assert reference.iterations > 1, "regression guard: goal must be non-trivial"

    def test_adaptive_lookahead_matches_serial_reference(
        self, tiny_quantized, tiny_eval
    ):
        """Adaptive depth shrinks rounds as the goal gap narrows, but only
        ever picks a prefix of the predetermined chain — results must stay
        identical to the serial heuristic, with no more overshoot than the
        fixed-depth speculative run."""
        qm, _ = tiny_quantized
        x, y = tiny_eval
        reference = self._reference(qm, x, y)
        fixed = plan_tmr(
            qm, x, y, self.HARD_BER, self.TARGET, self._ranking(qm),
            config=CONFIG, step=0.5, speculative=True, lookahead=4,
            engine=CampaignEngine(workers=PARITY_WORKERS),
        )
        adaptive = plan_tmr(
            qm, x, y, self.HARD_BER, self.TARGET, self._ranking(qm),
            config=CONFIG, step=0.5, speculative=True, lookahead=4,
            adaptive_lookahead=True,
            engine=CampaignEngine(workers=PARITY_WORKERS),
        )
        assert plan_summary(adaptive) == plan_summary(reference)
        assert adaptive.discarded_evaluations <= fixed.discarded_evaluations
        assert reference.discarded_evaluations == 0

    def test_adaptive_lookahead_saturation_path(self, tiny_quantized, tiny_eval):
        """Adaptive depth on an unreachable goal (gap never closes) keeps
        full-depth rounds and still matches the serial saturation stop."""
        qm, _ = tiny_quantized
        x, y = tiny_eval
        ranking = self._ranking(qm)[:1]
        config = CampaignConfig(seeds=(0,), batch_size=24, max_samples=24)
        reference = serial_plan_tmr(
            qm, x, y, 5e-2, 1.0, ranking, config, step=0.5, max_iterations=50
        )
        adaptive = plan_tmr(
            qm, x, y, 5e-2, 1.0, ranking, config=config, step=0.5,
            max_iterations=50, speculative=True, lookahead=3,
            adaptive_lookahead=True, engine=CampaignEngine(workers=PARITY_WORKERS),
        )
        assert plan_summary(adaptive) == plan_summary(reference)
        assert not reference.converged

    def test_speculative_serial_engine_identical(self, tiny_quantized, tiny_eval):
        """Speculation without a pool (workers=1) is still result-identical."""
        qm, _ = tiny_quantized
        x, y = tiny_eval
        speculative = plan_tmr(
            qm, x, y, self.HARD_BER, self.TARGET, self._ranking(qm),
            config=CONFIG, step=0.5, speculative=True, lookahead=3,
            engine=CampaignEngine(workers=1),
        )
        assert plan_summary(speculative) == plan_summary(self._reference(qm, x, y))

    def test_max_iterations_clamp_matches_serial(self, tiny_quantized, tiny_eval):
        """A lookahead round never runs past max_iterations, and the
        truncated result (including the serial loop's trailing unevaluated
        increment) is identical."""
        qm, _ = tiny_quantized
        x, y = tiny_eval
        for cap in (1, 2, 3):
            reference = self._reference(qm, x, y, max_iterations=cap)
            speculative = plan_tmr(
                qm, x, y, self.HARD_BER, self.TARGET, self._ranking(qm),
                config=CONFIG, step=0.5, speculative=True, lookahead=4,
                max_iterations=cap, engine=CampaignEngine(workers=PARITY_WORKERS),
            )
            assert plan_summary(speculative) == plan_summary(reference), f"cap={cap}"
            assert speculative.iterations <= cap

    def test_saturation_without_convergence_matches_serial(
        self, tiny_quantized, tiny_eval
    ):
        """An unreachable goal saturates every fraction; the speculative
        planner must stop at the same iteration count, not converged."""
        qm, _ = tiny_quantized
        x, y = tiny_eval
        # Rank (and therefore protect) only the first layer: its categories
        # saturate after a few increments while the rest of the network
        # stays faulty at a far-past-cliff BER, so the goal stays out of
        # reach and both planners must stop on the saturation path.
        ranking = self._ranking(qm)[:1]
        config = CampaignConfig(seeds=(0,), batch_size=24, max_samples=24)
        reference = serial_plan_tmr(
            qm, x, y, 5e-2, 1.0, ranking, config, step=0.5, max_iterations=50
        )
        speculative = plan_tmr(
            qm, x, y, 5e-2, 1.0, ranking, config=config, step=0.5,
            max_iterations=50, speculative=True, lookahead=3,
            engine=CampaignEngine(workers=PARITY_WORKERS),
        )
        assert plan_summary(speculative) == plan_summary(reference)
        assert not reference.converged, "saturation path must be exercised"
        assert reference.iterations < 50

    def test_speculative_overshoot_lands_in_checkpoint_harmlessly(
        self, tiny_quantized, tiny_eval, tmp_path
    ):
        """The documented deviation: overshoot candidates are checkpointed
        but never served to a non-speculative resume (different plans →
        different keys), which stays bit-identical."""
        qm, _ = tiny_quantized
        x, y = tiny_eval
        ckpt = tmp_path / "campaign.json"
        ranking = self._ranking(qm)
        speculative = plan_tmr(
            qm, x, y, self.HARD_BER, self.TARGET, ranking, config=CONFIG,
            step=0.5, speculative=True, lookahead=4,
            engine=CampaignEngine(
                workers=PARITY_WORKERS, checkpoint_path=ckpt
            ),
        )
        events = []
        resumed_engine = CampaignEngine(
            workers=1, checkpoint_path=ckpt, resume=True, progress=events.append
        )
        resumed = plan_tmr(
            qm, x, y, self.HARD_BER, self.TARGET, ranking, config=CONFIG,
            step=0.5, speculative=False, engine=resumed_engine,
        )
        assert plan_summary(resumed) == plan_summary(speculative)
        # Every non-speculative evaluation, across *all* planner
        # iterations (last_stats only reflects the final evaluate_tasks
        # call), was served from the checkpoint.
        assert events and all(event.cached for event in events)

    def test_scheme_curves_speculative_parity(self, tiny_quantized, tiny_eval):
        """run_tmr_schemes(speculative=True) reproduces the serial curves,
        including every TmrPlanResult.history."""
        qm_st, qm_wg = tiny_quantized
        x, y = tiny_eval
        fault_free = qm_st.evaluate(x[:24], y[:24])
        goals = [fault_free * 0.8]
        serial_curves = run_tmr_schemes(
            qm_st, qm_wg, x, y, CLIFF_BER, goals, config=CONFIG, step=0.5
        )
        speculative_curves = run_tmr_schemes(
            qm_st, qm_wg, x, y, CLIFF_BER, goals, config=CONFIG, step=0.5,
            engine=CampaignEngine(workers=PARITY_WORKERS), speculative=True,
        )
        assert set(speculative_curves) == set(serial_curves)
        for name in serial_curves:
            assert (
                speculative_curves[name].to_dict() == serial_curves[name].to_dict()
            )
            assert [r.history for r in speculative_curves[name].results] == [
                r.history for r in serial_curves[name].results
            ]

    def test_bad_lookahead_rejected(self, tiny_quantized, tiny_eval):
        from repro.errors import ConfigurationError

        qm, _ = tiny_quantized
        x, y = tiny_eval
        with pytest.raises(ConfigurationError, match="lookahead"):
            plan_tmr(
                qm, x, y, self.HARD_BER, self.TARGET, self._ranking(qm),
                config=CONFIG, speculative=True, lookahead=0,
            )
