"""Smoke test: examples/plan_tmr_parallel.py runs end-to-end.

The example is the user-facing demonstration of speculative planning, so
it is executed for real (tiny model, a few seconds) and its printed
output — including its own serial-vs-speculative identity verification —
is checked.
"""

from __future__ import annotations

import importlib.util
from pathlib import Path

EXAMPLE = Path(__file__).resolve().parent.parent / "examples" / "plan_tmr_parallel.py"


def _load_example():
    spec = importlib.util.spec_from_file_location("plan_tmr_parallel", EXAMPLE)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_example_runs_and_verifies_identity(capsys):
    example = _load_example()
    example.main(workers=2)  # exercises the pool path when fork exists
    out = capsys.readouterr().out
    # The example verifies speculative == serial itself and raises
    # SystemExit on divergence; assert on the printed verdict too.
    assert "speculative == serial heuristic : True" in out
    assert "converged: True" in out
    assert "protected fractions" in out
    # The demo is only meaningful if planning is non-trivial.
    iterations = int(out.split("planner iterations        : ")[1].split()[0])
    assert iterations > 1
