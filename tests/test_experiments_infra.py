"""Tests for the experiment infrastructure (profiles, caching, reporting)."""

import numpy as np
import pytest

from repro.experiments.common import (
    ExperimentProfile,
    FULL,
    QUICK,
    pick_cliff_ber,
)
from repro.experiments.headline import collect_headlines, format_headlines
from repro.faultsim import CampaignResult


def _result(ber, acc):
    return CampaignResult(
        ber=ber, lam=ber * 1e9, mean_accuracy=acc, std_accuracy=0.0,
        per_seed=[acc], events_per_seed=[1],
    )


class TestProfiles:
    def test_quick_smaller_than_full(self):
        assert QUICK.eval_samples < FULL.eval_samples
        assert len(QUICK.ber_grid) < len(FULL.ber_grid)

    def test_campaign_config_reflects_profile(self):
        config = QUICK.campaign()
        assert config.seeds == QUICK.seeds
        assert config.max_samples == QUICK.eval_samples

    def test_neuron_injector_selectable(self):
        assert QUICK.campaign("neuron").injector == "neuron"


class TestPickCliffBer:
    def test_picks_closest_to_target(self):
        results = [_result(1e-8, 0.95), _result(1e-7, 0.60), _result(1e-6, 0.10)]
        assert pick_cliff_ber(results, 1.0, target_fraction=0.6) == 1e-7

    def test_flat_curve_falls_back_gracefully(self):
        results = [_result(1e-8, 0.9), _result(1e-7, 0.9)]
        assert pick_cliff_ber(results, 0.9, 0.6) in (1e-8, 1e-7)


class TestHeadlines:
    def test_missing_artifacts_reported(self, tmp_path):
        rows = collect_headlines(tmp_path)
        assert all(row["measured"] is None for row in rows)
        text = format_headlines(rows)
        assert "(run)" in text

    def test_present_artifacts_read(self, tmp_path):
        from repro.utils.serialization import save_json

        save_json(
            tmp_path / "fig5.json",
            {"average_reduction": {"vs ST-Conv": 0.5, "vs WG-Conv-W/O-AFT": 0.2}},
        )
        rows = collect_headlines(tmp_path)
        fig5_row = next(r for r in rows if "TMR" in r["metric"])
        assert fig5_row["measured"]["vs ST-Conv"] == 0.5
        assert "50.00%" in format_headlines(rows)

    def test_paper_references_present(self, tmp_path):
        rows = collect_headlines(tmp_path)
        assert rows[0]["paper"]["vs ST-Conv"] == pytest.approx(0.6121)
        assert rows[1]["paper"]["vs WG-Conv-W/O-AFT"] == pytest.approx(0.0719)
