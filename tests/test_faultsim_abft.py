"""Tests for the ABFT checksum-detection baseline."""

import numpy as np
import pytest

from repro.faultsim import (
    AbftChecker,
    NeuronLevelInjector,
    OperationLevelInjector,
    detection_coverage,
)


class TestNoFaults:
    def test_no_false_positives_standard(self, tiny_quantized, tiny_eval):
        """Fault-free inference must produce zero checksum mismatches —
        the checksum identity is exact in integer arithmetic."""
        qm_st, _ = tiny_quantized
        x, _ = tiny_eval
        report = detection_coverage(qm_st, x[:8], inner_injector=None)
        assert report.total_detections == 0
        assert sum(report.checked.values()) > 0

    def test_no_false_positives_winograd(self, tiny_quantized, tiny_eval):
        _, qm_wg = tiny_quantized
        x, _ = tiny_eval
        report = detection_coverage(qm_wg, x[:8], inner_injector=None)
        assert report.total_detections == 0

    def test_output_unchanged_by_checker(self, tiny_quantized, tiny_eval):
        qm_st, _ = tiny_quantized
        x, _ = tiny_eval
        clean = qm_st.forward(x[:8])
        checked = qm_st.forward(x[:8], injector=AbftChecker(None))
        np.testing.assert_array_equal(clean, checked)


class TestDetection:
    @pytest.mark.parametrize("mode_index", [0, 1])
    def test_detects_operation_faults(self, tiny_quantized, tiny_eval, mode_index):
        qm = tiny_quantized[mode_index]
        x, _ = tiny_eval
        inner = OperationLevelInjector(3e-4, seed=0)
        report = detection_coverage(qm, x[:16], inner)
        assert sum(inner.event_counts.values()) > 0
        assert report.any_fault_detected

    def test_detection_rate_bounded(self, tiny_quantized, tiny_eval):
        qm_st, _ = tiny_quantized
        x, _ = tiny_eval
        report = detection_coverage(qm_st, x[:8], OperationLevelInjector(1e-4, seed=1))
        for layer in report.checked:
            assert 0.0 <= report.detection_rate(layer) <= 1.0

    def test_neuron_faults_escape_accumulator_abft(self, tiny_quantized, tiny_eval):
        """Post-requantization neuron flips are outside the GEMM checksum's
        protection domain (a known ABFT limitation)."""
        qm_st, _ = tiny_quantized
        x, _ = tiny_eval
        report = detection_coverage(qm_st, x[:8], NeuronLevelInjector(1e-4, seed=0))
        assert report.total_detections == 0


class TestReport:
    def test_rates_and_totals_consistent(self, tiny_quantized, tiny_eval):
        qm_st, _ = tiny_quantized
        x, _ = tiny_eval
        report = detection_coverage(qm_st, x[:8], OperationLevelInjector(3e-4, seed=2))
        assert report.total_detections == sum(report.detections.values())
        assert set(report.detections) <= set(report.checked)
