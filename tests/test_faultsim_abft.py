"""Tests for the ABFT checksum-detection baseline.

Beyond the coverage-baseline behaviour, this module pins the exactness
contract of the checksum kernels: both sides of the checksum identity are
pure int64 contractions, so channel sums past 2^53 — where float64 silently
rounds — must produce zero false detections (the regression the float64
einsum path used to fail), and malformed Winograd contexts fail with a
clean :class:`~repro.errors.FaultModelError` instead of a bare
TypeError/AttributeError.
"""

from types import SimpleNamespace

import numpy as np
import pytest

from repro.errors import FaultModelError
from repro.faultsim import (
    AbftChecker,
    FaultModelConfig,
    NeuronLevelInjector,
    OperationLevelInjector,
    detection_coverage,
)
from repro.fixedpoint import QFormat
from repro.quantized.qops import QConvDirect, QLinear


class TestNoFaults:
    def test_no_false_positives_standard(self, tiny_quantized, tiny_eval):
        """Fault-free inference must produce zero checksum mismatches —
        the checksum identity is exact in integer arithmetic."""
        qm_st, _ = tiny_quantized
        x, _ = tiny_eval
        report = detection_coverage(qm_st, x[:8], inner_injector=None)
        assert report.total_detections == 0
        assert sum(report.checked.values()) > 0

    def test_no_false_positives_winograd(self, tiny_quantized, tiny_eval):
        _, qm_wg = tiny_quantized
        x, _ = tiny_eval
        report = detection_coverage(qm_wg, x[:8], inner_injector=None)
        assert report.total_detections == 0

    def test_output_unchanged_by_checker(self, tiny_quantized, tiny_eval):
        qm_st, _ = tiny_quantized
        x, _ = tiny_eval
        clean = qm_st.forward(x[:8])
        checked = qm_st.forward(x[:8], injector=AbftChecker(None))
        np.testing.assert_array_equal(clean, checked)


class TestDetection:
    @pytest.mark.parametrize("mode_index", [0, 1])
    def test_detects_operation_faults(self, tiny_quantized, tiny_eval, mode_index):
        qm = tiny_quantized[mode_index]
        x, _ = tiny_eval
        inner = OperationLevelInjector(3e-4, seed=0)
        report = detection_coverage(qm, x[:16], inner)
        assert sum(inner.event_counts.values()) > 0
        assert report.any_fault_detected

    def test_detection_rate_bounded(self, tiny_quantized, tiny_eval):
        qm_st, _ = tiny_quantized
        x, _ = tiny_eval
        report = detection_coverage(qm_st, x[:8], OperationLevelInjector(1e-4, seed=1))
        for layer in report.checked:
            assert 0.0 <= report.detection_rate(layer) <= 1.0

    def test_neuron_faults_escape_accumulator_abft(self, tiny_quantized, tiny_eval):
        """Post-requantization neuron flips are outside the GEMM checksum's
        protection domain (a known ABFT limitation)."""
        qm_st, _ = tiny_quantized
        x, _ = tiny_eval
        report = detection_coverage(qm_st, x[:8], NeuronLevelInjector(1e-4, seed=0))
        assert report.total_detections == 0


class TestReport:
    def test_rates_and_totals_consistent(self, tiny_quantized, tiny_eval):
        qm_st, _ = tiny_quantized
        x, _ = tiny_eval
        report = detection_coverage(qm_st, x[:8], OperationLevelInjector(3e-4, seed=2))
        assert report.total_detections == sum(report.detections.values())
        assert set(report.detections) <= set(report.checked)


class TestZeroBerFalsePositives:
    """BER 0 wired through a real (but silent) injector: still zero FPs."""

    @pytest.mark.parametrize("mode_index", [0, 1], ids=["standard", "winograd"])
    @pytest.mark.parametrize(
        "injector_cls", [OperationLevelInjector, NeuronLevelInjector]
    )
    @pytest.mark.parametrize("scheme", ["stream", "counter"])
    def test_zero_detections(
        self, tiny_quantized, tiny_eval, mode_index, injector_cls, scheme
    ):
        qm = tiny_quantized[mode_index]
        x, _ = tiny_eval
        inner = injector_cls(
            0.0, seed=0, config=FaultModelConfig(rng_scheme=scheme)
        )
        report = detection_coverage(qm, x[:8], inner)
        assert sum(inner.event_counts.values()) == 0
        assert report.total_detections == 0
        assert sum(report.checked.values()) > 0


class TestChecksumExactness:
    """Regression: checksums past 2^53 must stay exact (pure int64 path).

    The original float64 einsum checksum rounded ``2^53 + 1`` to ``2^53``
    and flagged *clean* accumulators.  Both layers are built so the true
    channel sum is exactly ``2^53 + 1``, which float64 cannot represent.
    """

    BIG_W = 2**30
    BIG_X = 2**22

    def test_construction_actually_crosses_float53(self):
        """Guard: the magic numbers do land on a float-unrepresentable sum."""
        channel_sum = self.BIG_W * self.BIG_X * 2 + 1
        assert channel_sum == 2**53 + 1
        assert int(float(channel_sum)) != channel_sum

    def _forward_checked(self, layer, x):
        checker = AbftChecker(None)
        layer.forward([x], injector=checker)
        return checker.report()

    def test_linear_no_false_positives_past_float53(self):
        # Channel sum of the single accumulator row: 2^52+1 + 2^52 = 2^53+1.
        layer = QLinear(
            name="fc_big",
            inputs=("in",),
            out_fmt=QFormat(32, 0),
            weight_int=np.array(
                [[self.BIG_W, 1], [self.BIG_W, 0]], dtype=np.int64
            ),
            bias_acc=np.zeros(2, dtype=np.int64),
            in_fmt=QFormat(32, 0),
            w_fmt=QFormat(32, 0),
            acc_width=64,
        )
        x = np.array([[self.BIG_X, 1]], dtype=np.int64)
        report = self._forward_checked(layer, x)
        assert report.total_detections == 0
        assert report.checked == {"fc_big": 1}

    def test_direct_conv_no_false_positives_past_float53(self):
        # Same arithmetic through the im2col/GEMM path: a 1x1 conv whose
        # two output channels accumulate to 2^53 + 1 at the one position.
        weight = np.zeros((2, 2, 1, 1), dtype=np.int64)
        weight[0, 0, 0, 0], weight[0, 1, 0, 0] = self.BIG_W, 1
        weight[1, 0, 0, 0] = self.BIG_W
        layer = QConvDirect(
            name="conv_big",
            inputs=("in",),
            out_fmt=QFormat(32, 0),
            weight_int=weight,
            bias_acc=np.zeros(2, dtype=np.int64),
            in_fmt=QFormat(32, 0),
            w_fmt=QFormat(32, 0),
            kernel=1,
            stride=1,
            padding=0,
            acc_width=64,
        )
        x = np.zeros((1, 2, 1, 1), dtype=np.int64)
        x[0, 0, 0, 0] = self.BIG_X
        x[0, 1, 0, 0] = 1
        report = self._forward_checked(layer, x)
        assert report.total_detections == 0
        assert report.checked == {"conv_big": 1}


class TestWinogradGuards:
    """Malformed Winograd contexts fail loudly with FaultModelError."""

    def test_empty_sub_contexts_raises_fault_model_error(self):
        checker = AbftChecker(None)
        layer = SimpleNamespace(name="wg")
        with pytest.raises(FaultModelError, match="at least one"):
            checker.visit_winograd(
                layer, [], np.zeros((1, 1, 2, 2), dtype=np.int64)
            )

    def test_missing_u_int_raises_fault_model_error(self):
        checker = AbftChecker(None)
        layer = SimpleNamespace(name="wg")
        ctx = SimpleNamespace(u_int=None)
        with pytest.raises(FaultModelError, match="needs_intermediates"):
            checker.visit_winograd(
                layer, [(None, ctx)], np.zeros((1, 1, 2, 2), dtype=np.int64)
            )


class TestEventCountsAndCorrection:
    """Engine-facing surface: merged event_counts and snapshot repair."""

    BER = 3e-4

    def test_event_counts_merge_inner_and_abft(self, tiny_quantized, tiny_eval):
        qm_st, _ = tiny_quantized
        x, _ = tiny_eval
        inner = OperationLevelInjector(self.BER, seed=0)
        checker = AbftChecker(inner, correct=True)
        qm_st.forward(x[:16], injector=checker)
        counts = checker.event_counts
        report = checker.report()
        assert report.any_fault_detected
        assert counts["abft_detected"] == report.total_detections
        assert counts["abft_corrected"] == counts["abft_detected"]
        inner_total = sum(inner.event_counts.values())
        assert inner_total > 0
        assert sum(counts.values()) == (
            inner_total + counts["abft_detected"] + counts["abft_corrected"]
        )

    def test_event_counts_empty_without_inner_or_faults(
        self, tiny_quantized, tiny_eval
    ):
        qm_st, _ = tiny_quantized
        x, _ = tiny_eval
        checker = AbftChecker(None)
        qm_st.forward(x[:8], injector=checker)
        assert checker.event_counts == {}

    def test_correction_restores_accuracy(self, tiny_quantized, tiny_eval):
        """Detect => recompute: the corrected run scores at least as well
        as the unprotected one under the identical fault pattern."""
        qm_st, _ = tiny_quantized
        x, y = tiny_eval
        faulty = qm_st.evaluate(
            x[:24], y[:24],
            injector=OperationLevelInjector(self.BER, seed=0),
            batch_size=24,
        )
        checker = AbftChecker(OperationLevelInjector(self.BER, seed=0), correct=True)
        corrected = qm_st.evaluate(x[:24], y[:24], injector=checker, batch_size=24)
        assert checker.report().any_fault_detected
        assert corrected >= faulty

    def test_layer_restriction_skips_unlisted_layers(
        self, tiny_quantized, tiny_eval
    ):
        """layers= scopes both checking cost and the detection report."""
        qm_st, _ = tiny_quantized
        x, _ = tiny_eval
        names = [layer.name for layer in qm_st.injectable_layers()]
        checker = AbftChecker(
            OperationLevelInjector(self.BER, seed=0), layers={names[0]}
        )
        qm_st.forward(x[:16], injector=checker)
        assert set(checker.report().checked) == {names[0]}
