"""Tests for protection plans, site census and campaign running."""

import numpy as np
import pytest

from repro.errors import FaultModelError
from repro.faultsim import (
    CampaignConfig,
    FaultModelConfig,
    ProtectionPlan,
    expected_faults_per_image,
    layer_exposure,
    model_exposure,
    run_point,
    run_sweep,
)


class TestProtectionPlan:
    def test_default_fraction_zero(self):
        assert ProtectionPlan().fraction("any", "st_mul") == 0.0

    def test_set_and_get(self):
        plan = ProtectionPlan()
        plan.set("c1", "st_mul", 0.5)
        assert plan.fraction("c1", "st_mul") == 0.5

    def test_rejects_bad_category(self):
        with pytest.raises(FaultModelError):
            ProtectionPlan().set("c1", "division", 0.5)

    def test_rejects_bad_fraction(self):
        with pytest.raises(FaultModelError):
            ProtectionPlan().set("c1", "st_mul", 1.5)

    def test_fault_free_layer_requires_known_layer(self):
        with pytest.raises(FaultModelError):
            ProtectionPlan.fault_free_layer("ghost", ["c1"])

    def test_copy_is_independent(self):
        plan = ProtectionPlan()
        plan.set("c1", "st_mul", 0.5)
        other = plan.copy()
        other.set("c1", "st_mul", 1.0)
        assert plan.fraction("c1", "st_mul") == 0.5

    def test_cache_key_stable(self):
        a = ProtectionPlan()
        a.set("c1", "st_mul", 0.5)
        a.set("c2", "st_add", 0.25)
        b = ProtectionPlan()
        b.set("c2", "st_add", 0.25)
        b.set("c1", "st_mul", 0.5)
        assert a.cache_key() == b.cache_key()


class TestSiteCensus:
    def test_exposure_matches_op_counts(self, tiny_quantized):
        qm_st, _ = tiny_quantized
        config = FaultModelConfig()
        layer = qm_st.injectable_layers()[0]
        exposure = layer_exposure(layer, config)
        width = layer.in_fmt.width
        assert exposure["st_mul"] == layer.op_counts.st_mul * 2 * width
        assert exposure["st_add"] == layer.op_counts.st_add * layer.acc_width

    def test_model_exposure_covers_all_layers(self, tiny_quantized):
        qm_st, _ = tiny_quantized
        exposure = model_exposure(qm_st, FaultModelConfig())
        assert set(exposure) == {l.name for l in qm_st.injectable_layers()}

    def test_expected_faults_linear_in_ber(self, tiny_quantized):
        qm_st, _ = tiny_quantized
        lam1 = expected_faults_per_image(qm_st, 1e-8)
        lam2 = expected_faults_per_image(qm_st, 2e-8)
        assert lam2 == pytest.approx(2 * lam1)

    def test_protection_reduces_expected_faults(self, tiny_quantized):
        qm_st, _ = tiny_quantized
        layers = [l.name for l in qm_st.injectable_layers()]
        plan = ProtectionPlan.fault_free_muls(layers)
        assert expected_faults_per_image(qm_st, 1e-8, protection=plan) < (
            expected_faults_per_image(qm_st, 1e-8)
        )

    def test_winograd_exposure_below_standard(self, tiny_quantized):
        """Fewer multiplications -> less exposed mul state."""
        qm_st, qm_wg = tiny_quantized
        assert expected_faults_per_image(qm_wg, 1e-8) < expected_faults_per_image(
            qm_st, 1e-8
        )


class TestCampaign:
    def test_zero_ber_point_is_fault_free(self, tiny_quantized, tiny_eval):
        qm_st, _ = tiny_quantized
        x, y = tiny_eval
        result = run_point(qm_st, x, y, 0.0, CampaignConfig(seeds=(0,)))
        assert result.mean_accuracy == qm_st.evaluate(x, y)
        assert result.events_per_seed == [0]

    def test_accuracy_monotone_trend(self, tiny_quantized, tiny_eval):
        """Accuracy at a destructive BER is far below the fault-free point."""
        qm_st, _ = tiny_quantized
        x, y = tiny_eval
        config = CampaignConfig(seeds=(0, 1), max_samples=32)
        low = run_point(qm_st, x, y, 1e-8, config)
        high = run_point(qm_st, x, y, 3e-4, config)
        assert high.mean_accuracy < low.mean_accuracy

    def test_sweep_preserves_order(self, tiny_quantized, tiny_eval):
        qm_st, _ = tiny_quantized
        x, y = tiny_eval
        bers = [1e-8, 1e-6]
        results = run_sweep(qm_st, x, y, bers, CampaignConfig(seeds=(0,), max_samples=16))
        assert [r.ber for r in results] == bers

    def test_neuron_injector_selectable(self, tiny_quantized, tiny_eval):
        qm_st, _ = tiny_quantized
        x, y = tiny_eval
        config = CampaignConfig(seeds=(0,), injector="neuron", max_samples=16)
        result = run_point(qm_st, x, y, 1e-5, config)
        assert 0.0 <= result.mean_accuracy <= 1.0

    def test_unknown_injector_raises(self, tiny_quantized, tiny_eval):
        qm_st, _ = tiny_quantized
        x, y = tiny_eval
        with pytest.raises(ValueError):
            run_point(qm_st, x, y, 1e-6, CampaignConfig(seeds=(0,), injector="cosmic"))

    def test_result_serializable(self, tiny_quantized, tiny_eval):
        qm_st, _ = tiny_quantized
        x, y = tiny_eval
        result = run_point(qm_st, x, y, 1e-7, CampaignConfig(seeds=(0,), max_samples=8))
        payload = result.to_dict()
        assert set(payload) >= {"ber", "lambda", "mean_accuracy", "per_seed"}
