"""Tests for the operation-level and neuron-level fault injectors."""

import numpy as np
import pytest

from repro.faultsim import (
    BerConvention,
    FaultModelConfig,
    FaultSemantics,
    NeuronLevelInjector,
    OperationLevelInjector,
    ProtectionPlan,
    expected_faults_per_image,
)
from repro.faultsim.operation_level import _stage_register_width, register_flip_delta
from repro.winograd.opcount import ALL_CATEGORIES


class TestStageRegisterWidth:
    def test_caps_at_acc_width(self):
        assert _stage_register_width(2**40, 20) == 20

    def test_narrow_stage_gets_narrow_register(self):
        assert _stage_register_width(100, 20) == 8  # 7 bits + sign

    def test_degenerate(self):
        assert _stage_register_width(0, 20) == 2


class TestRegisterFlipDelta:
    def test_delta_power_of_two(self):
        values = np.array([0, 3, -7, 100], dtype=np.int64)
        deltas = register_flip_delta(values, 4, 8, 0)
        assert set(np.abs(deltas).tolist()) == {16}

    def test_scale_pow_shifts_delta(self):
        values = np.array([0], dtype=np.int64)
        assert register_flip_delta(values, 0, 8, 5)[0] == 32


class TestInjectorBasics:
    def test_zero_ber_is_identity(self, tiny_quantized, tiny_eval):
        qm_st, qm_wg = tiny_quantized
        x, _ = tiny_eval
        for qm in (qm_st, qm_wg):
            clean = qm.forward(x[:8])
            injected = qm.forward(x[:8], injector=OperationLevelInjector(0.0, seed=1))
            np.testing.assert_array_equal(clean, injected)

    def test_deterministic_given_seed(self, tiny_quantized, tiny_eval):
        qm_st, _ = tiny_quantized
        x, _ = tiny_eval
        a = qm_st.forward(x[:8], injector=OperationLevelInjector(1e-5, seed=7))
        b = qm_st.forward(x[:8], injector=OperationLevelInjector(1e-5, seed=7))
        np.testing.assert_array_equal(a, b)

    def test_different_seeds_differ(self, tiny_quantized, tiny_eval):
        qm_st, _ = tiny_quantized
        x, _ = tiny_eval
        a = qm_st.forward(x[:8], injector=OperationLevelInjector(1e-4, seed=1))
        b = qm_st.forward(x[:8], injector=OperationLevelInjector(1e-4, seed=2))
        assert not np.array_equal(a, b)

    def test_rejects_negative_ber(self):
        with pytest.raises(ValueError):
            OperationLevelInjector(-1e-9)

    def test_event_counts_track_categories(self, tiny_quantized, tiny_eval):
        qm_st, qm_wg = tiny_quantized
        x, _ = tiny_eval
        inj = OperationLevelInjector(1e-4, seed=0)
        qm_st.forward(x[:8], injector=inj)
        assert inj.event_counts["st_mul"] > 0
        assert inj.event_counts["st_add"] > 0
        inj_wg = OperationLevelInjector(1e-4, seed=0)
        qm_wg.forward(x[:8], injector=inj_wg)
        assert inj_wg.event_counts["wg_mul"] > 0

    def test_event_cap_binds(self, tiny_quantized, tiny_eval):
        qm_st, _ = tiny_quantized
        x, _ = tiny_eval
        config = FaultModelConfig(max_events_per_category=5)
        inj = OperationLevelInjector(1e-3, seed=0, config=config)
        qm_st.forward(x[:8], injector=inj)
        assert inj.capped

    def test_poisson_event_rate_matches_lambda(self, tiny_quantized, tiny_eval):
        """Injected event totals should track the analytic exposure."""
        qm_st, _ = tiny_quantized
        x, _ = tiny_eval
        ber = 1e-5
        lam_per_image = expected_faults_per_image(qm_st, ber)
        inj = OperationLevelInjector(ber, seed=0)
        qm_st.forward(x[:24], injector=inj)
        total = sum(inj.event_counts.values())
        expected = lam_per_image * 24
        assert expected * 0.5 < total < expected * 1.5


class TestProtectionThinning:
    def test_full_protection_is_identity(self, tiny_quantized, tiny_eval):
        qm_st, _ = tiny_quantized
        x, _ = tiny_eval
        layers = [l.name for l in qm_st.injectable_layers()]
        plan = ProtectionPlan()
        for layer in layers:
            for cat in ALL_CATEGORIES:
                plan.set(layer, cat, 1.0)
        clean = qm_st.forward(x[:8])
        injected = qm_st.forward(
            x[:8], injector=OperationLevelInjector(1e-4, seed=0, protection=plan)
        )
        np.testing.assert_array_equal(clean, injected)

    def test_partial_protection_reduces_events(self, tiny_quantized, tiny_eval):
        qm_st, _ = tiny_quantized
        x, _ = tiny_eval
        layers = [l.name for l in qm_st.injectable_layers()]
        plan = ProtectionPlan()
        for layer in layers:
            plan.set(layer, "st_mul", 0.9)
        unprotected = OperationLevelInjector(1e-4, seed=0)
        protected = OperationLevelInjector(1e-4, seed=0, protection=plan)
        qm_st.forward(x[:16], injector=unprotected)
        qm_st.forward(x[:16], injector=protected)
        assert (
            protected.event_counts["st_mul"] < unprotected.event_counts["st_mul"] * 0.4
        )

    def test_category_protection_zeroes_category(self, tiny_quantized, tiny_eval):
        qm_wg, = (tiny_quantized[1],)
        x, _ = tiny_eval
        layers = [l.name for l in qm_wg.injectable_layers()]
        plan = ProtectionPlan.fault_free_muls(layers)
        inj = OperationLevelInjector(1e-4, seed=0, protection=plan)
        qm_wg.forward(x[:8], injector=inj)
        assert inj.event_counts.get("wg_mul", 0) == 0
        assert inj.event_counts.get("st_mul", 0) == 0


class TestSemanticVariants:
    def test_result_all_weakens_muls(self, tiny_quantized, tiny_eval):
        """Without the wide product register, multiplication faults shrink —
        the deltas under RESULT_ALL are bounded by the sum-register width."""
        qm_st, _ = tiny_quantized
        x, _ = tiny_eval
        ber = 3e-5
        clean = qm_st.forward(x[:16]).astype(np.float64)

        def damage(config):
            out = qm_st.forward(
                x[:16], injector=OperationLevelInjector(ber, seed=3, config=config)
            )
            return float(np.abs(out - clean).sum())

        paper = damage(FaultModelConfig(semantics=FaultSemantics.PAPER))
        uniform = damage(FaultModelConfig(semantics=FaultSemantics.RESULT_ALL))
        assert uniform < paper

    def test_per_op_convention_reduces_rate(self, tiny_quantized, tiny_eval):
        qm_st, _ = tiny_quantized
        x, _ = tiny_eval
        per_bit = OperationLevelInjector(
            1e-5, seed=0, config=FaultModelConfig(convention=BerConvention.PER_BIT)
        )
        per_op = OperationLevelInjector(
            1e-5, seed=0, config=FaultModelConfig(convention=BerConvention.PER_OP)
        )
        qm_st.forward(x[:16], injector=per_bit)
        qm_st.forward(x[:16], injector=per_op)
        assert sum(per_op.event_counts.values()) < sum(per_bit.event_counts.values())

    def test_amplified_input_adds_more_damaging(self, tiny_quantized, tiny_eval):
        qm_wg = tiny_quantized[1]
        x, _ = tiny_eval
        layers = [l.name for l in qm_wg.injectable_layers()]
        # Isolate input-transform adds.
        plan = ProtectionPlan.fault_free_category(
            tuple(c for c in ALL_CATEGORIES if c != "wg_input_add"), layers
        )
        clean = qm_wg.forward(x[:16]).astype(np.float64)

        def damage(amplify):
            config = FaultModelConfig(amplify_input_transform_adds=amplify)
            total = 0.0
            for seed in range(4):
                out = qm_wg.forward(
                    x[:16],
                    injector=OperationLevelInjector(
                        3e-4, seed=seed, config=config, protection=plan
                    ),
                )
                total += float(np.abs(out - clean).sum())
            return total

        assert damage(True) > damage(False)


class TestNeuronLevelInjector:
    def test_cannot_distinguish_st_from_wg(self, tiny_quantized, tiny_eval):
        """The paper's Fig. 1 argument, exactly: neuron-level injection
        produces identical results for both convolution algorithms."""
        qm_st, qm_wg = tiny_quantized
        x, _ = tiny_eval
        out_st = qm_st.forward(x[:16], injector=NeuronLevelInjector(1e-4, seed=5))
        out_wg = qm_wg.forward(x[:16], injector=NeuronLevelInjector(1e-4, seed=5))
        np.testing.assert_array_equal(out_st, out_wg)

    def test_injects_events(self, tiny_quantized, tiny_eval):
        qm_st, _ = tiny_quantized
        x, _ = tiny_eval
        inj = NeuronLevelInjector(1e-3, seed=0)
        qm_st.forward(x[:8], injector=inj)
        assert inj.event_counts["neuron"] > 0

    def test_outputs_stay_in_format_range(self, tiny_quantized, tiny_eval):
        qm_st, _ = tiny_quantized
        x, _ = tiny_eval
        out = qm_st.forward(x[:8], injector=NeuronLevelInjector(1e-3, seed=0))
        fmt = qm_st.output_fmt
        assert out.max() <= fmt.qmax and out.min() >= fmt.qmin

    def test_rejects_negative_ber(self):
        with pytest.raises(ValueError):
            NeuronLevelInjector(-1.0)
