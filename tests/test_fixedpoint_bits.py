"""Tests for repro.fixedpoint.bits — the fault model's bit-level kernel."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import FaultModelError
from repro.fixedpoint import (
    flip_bit,
    flip_delta,
    from_twos_complement,
    to_twos_complement,
)


class TestTwosComplement:
    def test_roundtrip_in_range(self):
        values = np.array([-128, -1, 0, 1, 127], dtype=np.int64)
        words = to_twos_complement(values, 8)
        assert np.array_equal(from_twos_complement(words, 8), values)

    def test_wraps_out_of_range(self):
        # 130 in 8-bit two's complement is -126.
        assert from_twos_complement(to_twos_complement(np.array([130]), 8), 8)[0] == -126

    def test_negative_encoding(self):
        assert to_twos_complement(np.array([-1]), 8)[0] == 255

    @pytest.mark.parametrize("width", [0, 63, 100])
    def test_rejects_bad_width(self, width):
        with pytest.raises(FaultModelError):
            to_twos_complement(np.array([0]), width)


class TestFlipBit:
    def test_low_bit(self):
        assert flip_bit(np.array([4]), 0, 8)[0] == 5

    def test_sign_bit_makes_negative(self):
        assert flip_bit(np.array([0]), 7, 8)[0] == -128

    def test_rejects_bit_out_of_range(self):
        with pytest.raises(FaultModelError):
            flip_bit(np.array([0]), 8, 8)

    @settings(max_examples=100, deadline=None)
    @given(
        value=st.integers(-(2**30), 2**30),
        bit=st.integers(0, 15),
    )
    def test_involution(self, value, bit):
        """Flipping the same bit twice restores the register contents."""
        v = np.array([value], dtype=np.int64)
        twice = flip_bit(flip_bit(v, bit, 16), bit, 16)
        window = from_twos_complement(to_twos_complement(v, 16), 16)
        assert np.array_equal(twice, window)


class TestFlipDelta:
    def test_magnitude_is_power_of_two(self):
        deltas = flip_delta(np.arange(-50, 50, dtype=np.int64), 3, 8)
        assert set(np.abs(deltas).tolist()) == {8}

    def test_sign_depends_on_bit_value(self):
        # value 8 has bit 3 set -> flipping clears it: delta -8.
        assert flip_delta(np.array([8]), 3, 8)[0] == -8
        assert flip_delta(np.array([0]), 3, 8)[0] == +8

    def test_sign_bit_delta(self):
        assert flip_delta(np.array([0]), 7, 8)[0] == -128

    @settings(max_examples=100, deadline=None)
    @given(
        value=st.integers(-(2**45), 2**45),
        bit=st.integers(0, 15),
    )
    def test_delta_bounded_by_register_width(self, value, bit):
        """No fault can inject more than the register's MSB weight —
        values wider than the window must not leak into the delta."""
        delta = int(flip_delta(np.array([value], dtype=np.int64), bit, 16)[0])
        assert abs(delta) == 2**bit

    @settings(max_examples=50, deadline=None)
    @given(value=st.integers(-(2**14), 2**14 - 1), bit=st.integers(0, 15))
    def test_delta_consistent_with_flip_for_in_range(self, value, bit):
        v = np.array([value], dtype=np.int64)
        assert flip_delta(v, bit, 16)[0] == flip_bit(v, bit, 16)[0] - value
