"""Tests for repro.fixedpoint.calibrate."""

import numpy as np
import pytest

from repro.errors import QuantizationError
from repro.fixedpoint import MinMaxObserver, PercentileObserver


class TestMinMaxObserver:
    def test_tracks_max_abs_across_calls(self):
        obs = MinMaxObserver(width=16)
        obs.observe(np.array([1.0, -3.0]))
        obs.observe(np.array([2.0]))
        assert obs.max_abs == 3.0

    def test_derived_format_covers_range(self):
        obs = MinMaxObserver(width=8)
        obs.observe(np.array([5.5]))
        fmt = obs.qformat()
        assert fmt.max_value >= 5.5

    def test_margin_expands_range(self):
        plain = MinMaxObserver(width=8)
        wide = MinMaxObserver(width=8, margin=4.0)
        for obs in (plain, wide):
            obs.observe(np.array([1.0]))
        assert wide.qformat().frac <= plain.qformat().frac

    def test_raises_without_data(self):
        with pytest.raises(QuantizationError):
            MinMaxObserver(width=8).qformat()

    def test_empty_arrays_ignored(self):
        obs = MinMaxObserver(width=8)
        obs.observe(np.array([]))
        with pytest.raises(QuantizationError):
            obs.qformat()


class TestPercentileObserver:
    def test_ignores_outliers(self, rng):
        obs = PercentileObserver(width=16, percentile=99.0)
        data = rng.normal(0, 1, size=10_000)
        data[0] = 1e6  # single outlier
        obs.observe(data)
        fmt = obs.qformat()
        assert fmt.max_value < 100  # format not blown up by the outlier

    def test_reservoir_bounded(self):
        obs = PercentileObserver(width=16, reservoir_size=100)
        obs.observe(np.ones(10_000))
        assert obs._stored <= 100

    def test_raises_without_data(self):
        with pytest.raises(QuantizationError):
            PercentileObserver(width=8).qformat()
