"""Tests for repro.fixedpoint.qformat."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import QuantizationError
from repro.fixedpoint import QFormat


class TestQFormatBasics:
    def test_q16_limits(self):
        fmt = QFormat(16, 8)
        assert fmt.qmin == -32768
        assert fmt.qmax == 32767
        assert fmt.scale == pytest.approx(1 / 256)

    def test_real_range(self):
        fmt = QFormat(8, 4)
        assert fmt.max_value == pytest.approx(127 / 16)
        assert fmt.min_value == pytest.approx(-128 / 16)

    def test_negative_frac_allowed(self):
        fmt = QFormat(8, -2)
        assert fmt.scale == 4.0

    @pytest.mark.parametrize("width", [0, 1, 64, 100])
    def test_rejects_bad_width(self, width):
        with pytest.raises(QuantizationError):
            QFormat(width, 0)

    def test_with_width_and_frac(self):
        fmt = QFormat(16, 8)
        assert fmt.with_width(8) == QFormat(8, 8)
        assert fmt.with_frac(4) == QFormat(16, 4)

    def test_str(self):
        assert str(QFormat(16, 11)) == "Q16.11"


class TestForMaxAbs:
    def test_zero_gives_max_resolution(self):
        fmt = QFormat.for_max_abs(8, 0.0)
        assert fmt.frac == 7

    def test_rejects_negative(self):
        with pytest.raises(QuantizationError):
            QFormat.for_max_abs(8, -1.0)

    @given(
        width=st.sampled_from([8, 16]),
        max_abs=st.floats(1e-6, 1e6, allow_nan=False, allow_infinity=False),
    )
    def test_range_covers_and_is_tight(self, width, max_abs):
        """The chosen format covers max_abs and one more frac bit would not."""
        fmt = QFormat.for_max_abs(width, max_abs)
        assert fmt.max_value >= max_abs
        tighter = QFormat(width, fmt.frac + 1)
        assert tighter.max_value < max_abs
