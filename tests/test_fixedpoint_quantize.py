"""Tests for repro.fixedpoint.quantize."""

from fractions import Fraction

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import QuantizationError
from repro.fixedpoint import (
    QFormat,
    dequantize,
    quantize,
    requantize,
    rescale_round,
    saturate,
)


class TestQuantizeDequantize:
    def test_roundtrip_error_bounded_by_half_lsb(self, rng):
        fmt = QFormat(16, 10)
        x = rng.uniform(-20, 20, size=1000)
        err = np.abs(dequantize(quantize(x, fmt), fmt) - x)
        assert err.max() <= fmt.scale / 2 + 1e-12

    def test_saturates_out_of_range(self):
        fmt = QFormat(8, 0)
        q = quantize(np.array([1e9, -1e9]), fmt)
        assert q.tolist() == [127, -128]

    def test_round_half_away_from_zero(self):
        fmt = QFormat(8, 0)
        q = quantize(np.array([0.5, -0.5, 1.5, -1.5]), fmt)
        assert q.tolist() == [1, -1, 2, -2]

    def test_zero_maps_to_zero(self):
        assert quantize(np.zeros(3), QFormat(16, 12)).tolist() == [0, 0, 0]


class TestSaturate:
    def test_clamps(self):
        fmt = QFormat(8, 0)
        out = saturate(np.array([300, -300, 5]), fmt)
        assert out.tolist() == [127, -128, 5]


class TestRescaleRound:
    def test_identity(self):
        q = np.array([1, -5, 100], dtype=np.int64)
        assert np.array_equal(rescale_round(q, Fraction(1)), q)

    def test_rejects_non_positive(self):
        with pytest.raises(QuantizationError):
            rescale_round(np.array([1]), Fraction(0))

    def test_half_away_rounding(self):
        q = np.array([1, 3, -1, -3], dtype=np.int64)
        out = rescale_round(q, Fraction(1, 2))
        assert out.tolist() == [1, 2, -1, -2]

    @settings(max_examples=60, deadline=None)
    @given(
        value=st.integers(-(2**40), 2**40),
        num=st.integers(1, 1000),
        den=st.integers(1, 1000),
    )
    def test_matches_exact_fraction_arithmetic(self, value, num, den):
        """rescale_round must equal exact rational round-half-away."""
        ratio = Fraction(num, den)
        out = int(rescale_round(np.array([value], dtype=np.int64), ratio)[0])
        exact = Fraction(value) * ratio
        sign = -1 if exact < 0 else 1
        expected = sign * int((abs(exact) + Fraction(1, 2)).__floor__())
        assert out == expected

    def test_object_fallback_for_huge_scales(self):
        q = np.array([2**60], dtype=np.int64)
        out = rescale_round(q, Fraction(1, 2**10))
        assert out[0] == 2**50


class TestRequantize:
    def test_shift_down(self):
        out_fmt = QFormat(16, 4)
        acc = np.array([1 << 10], dtype=np.int64)  # acc frac = 10
        assert requantize(acc, 10, out_fmt)[0] == 1 << 4

    def test_extra_ratio(self):
        out_fmt = QFormat(16, 0)
        acc = np.array([36], dtype=np.int64)
        out = requantize(acc, 0, out_fmt, extra_ratio=Fraction(1, 36))
        assert out[0] == 1

    def test_saturation_applied(self):
        out_fmt = QFormat(8, 0)
        acc = np.array([10**6], dtype=np.int64)
        assert requantize(acc, 0, out_fmt)[0] == 127
