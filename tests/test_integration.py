"""End-to-end integration tests: the full paper pipeline on the tiny model.

These exercise the complete chain — train -> quantize (both modes) ->
inject -> analyze -> plan TMR -> voltage-scale — and assert the paper's
qualitative findings hold on the library's own substrate.
"""

import numpy as np
import pytest

from repro.accel import (
    AccuracyCurve,
    DNN_ENGINE,
    VoltageBerModel,
    scheme_energies,
    simulate_network,
)
from repro.faultsim import (
    CampaignConfig,
    NeuronLevelInjector,
    OperationLevelInjector,
    expected_faults_per_image,
    run_sweep,
)

CLIFF_BER = 1e-4


@pytest.fixture(scope="module")
def sweep_results(tiny_quantized, tiny_eval):
    """Shared BER sweep over both execution modes."""
    qm_st, qm_wg = tiny_quantized
    x, y = tiny_eval
    bers = [1e-6, 1e-5, 5e-5, 1e-4, 3e-4]
    config = CampaignConfig(seeds=(0, 1, 2), max_samples=48)
    st = run_sweep(qm_st, x, y, bers, config)
    wg = run_sweep(qm_wg, x, y, bers, config)
    return bers, st, wg


class TestPaperFindings:
    def test_winograd_at_least_as_tolerant(self, sweep_results):
        """Fig. 2's ordering: WG accuracy >= ST accuracy along the sweep
        (allowing Monte-Carlo noise at points where both are healthy)."""
        _, st, wg = sweep_results
        for s, w in zip(st, wg):
            assert w.mean_accuracy >= s.mean_accuracy - 0.08

    def test_winograd_advantage_at_cliff(self, sweep_results):
        """Somewhere on the sweep Winograd must be strictly better."""
        _, st, wg = sweep_results
        gaps = [w.mean_accuracy - s.mean_accuracy for s, w in zip(st, wg)]
        assert max(gaps) > 0.1

    def test_accuracy_collapses_at_extreme_ber(self, sweep_results):
        _, st, _ = sweep_results
        assert st[-1].mean_accuracy < st[0].mean_accuracy - 0.3

    def test_lambda_reported_and_scaled(self, tiny_quantized, sweep_results):
        qm_st, qm_wg = tiny_quantized
        bers, st, wg = sweep_results
        for r in st:
            assert r.lam == pytest.approx(
                expected_faults_per_image(qm_st, r.ber), rel=1e-6
            )
        # Winograd exposes less fault-prone state at the same BER.
        assert wg[0].lam < st[0].lam


class TestInjectorContrast:
    def test_neuron_level_identical_operation_level_distinct(
        self, tiny_quantized, tiny_eval
    ):
        """Fig. 1 in miniature."""
        qm_st, qm_wg = tiny_quantized
        x, _ = tiny_eval
        nr_st = qm_st.forward(x[:24], injector=NeuronLevelInjector(1e-4, seed=11))
        nr_wg = qm_wg.forward(x[:24], injector=NeuronLevelInjector(1e-4, seed=11))
        np.testing.assert_array_equal(nr_st, nr_wg)

        op_st = qm_st.forward(x[:24], injector=OperationLevelInjector(1e-4, seed=11))
        op_wg = qm_wg.forward(x[:24], injector=OperationLevelInjector(1e-4, seed=11))
        assert not np.array_equal(op_st, op_wg)


class TestEnergyPipeline:
    def test_full_dvfs_chain(self, tiny_quantized, sweep_results):
        """Accuracy curves -> voltage choice -> energy, end to end."""
        qm_st, qm_wg = tiny_quantized
        bers, st, wg = sweep_results
        curve_st = AccuracyCurve(
            [r.ber for r in st], [r.mean_accuracy for r in st], st[0].mean_accuracy
        )
        curve_wg = AccuracyCurve(
            [r.ber for r in wg], [r.mean_accuracy for r in wg], wg[0].mean_accuracy
        )
        # Calibrate the voltage model into the tiny model's lambda space.
        exposure = expected_faults_per_image(qm_st, 1.0)
        vber = VoltageBerModel(ber_ref=1600.0 / exposure)

        t_st = simulate_network(qm_st, DNN_ENGINE, batch=16)
        t_wg = simulate_network(qm_wg, DNN_ENGINE, batch=16)
        points = scheme_energies(
            curve_st, curve_wg, t_st.total_cycles, t_wg.total_cycles,
            accuracy_loss=0.05, vber=vber,
        )
        # Voltage scaling saves energy; awareness scales at least as deep.
        # (The tiny model's 3-channel stem makes WG *cycles* uncompetitive,
        # so the Base comparison is made against the same execution mode.)
        assert points["ST-Conv"].energy_joules < points["Base"].energy_joules
        assert points["WG-Conv-W/AFT"].energy_joules <= (
            points["WG-Conv-W/O-AFT"].energy_joules + 1e-12
        )
        assert points["WG-Conv-W/AFT"].voltage <= points["ST-Conv"].voltage
