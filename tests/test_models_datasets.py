"""Tests for the model zoo and synthetic datasets."""

import numpy as np
import pytest

from repro.datasets import DATASET_PRESETS, DatasetSpec, make_dataset
from repro.errors import ConfigurationError
from repro.models import BENCHMARKS, build_benchmark_model, list_benchmarks
from repro.nn import forward, infer_shapes, initialize


class TestModelTopologies:
    def test_registry_contents(self):
        assert list_benchmarks() == ["densenet169", "googlenet", "resnet50", "vgg19"]

    def test_unknown_benchmark_raises(self):
        with pytest.raises(ConfigurationError):
            build_benchmark_model("alexnet")

    def test_vgg19_has_16_convs_3_fc(self):
        g = build_benchmark_model("vgg19")
        convs = [n for n in g if n.op == "conv2d"]
        linears = [n for n in g if n.op == "linear"]
        assert len(convs) == 16
        assert len(linears) == 3
        assert all(n.attrs["kernel"] == 3 for n in convs)

    def test_resnet50_structure(self):
        g = build_benchmark_model("resnet50")
        convs = [n for n in g if n.op == "conv2d"]
        # 1 stem + 16 blocks * 3 + 4 projections = 53 convolutions.
        assert len(convs) == 53
        stem = g.node("stem_conv")
        assert stem.attrs["kernel"] == 7 and stem.attrs["stride"] == 2
        adds = [n for n in g if n.op == "add"]
        assert len(adds) == 16  # one residual join per block

    def test_densenet169_structure(self):
        g = build_benchmark_model("densenet169")
        convs = [n for n in g if n.op == "conv2d"]
        # stem + 82 dense layers * 2 + 3 transitions = 168.
        assert len(convs) == 168
        concats = [n for n in g if n.op == "concat"]
        assert len(concats) > 80  # dense connectivity

    def test_googlenet_structure(self):
        g = build_benchmark_model("googlenet")
        convs = [n for n in g if n.op == "conv2d"]
        # stem + 9 modules * 6 convs = 55.
        assert len(convs) == 55
        five_by_five = [n for n in convs if n.attrs["kernel"] == 5]
        assert len(five_by_five) == 9  # one 5x5 branch per module

    @pytest.mark.parametrize("name", ["vgg19", "resnet50", "googlenet"])
    def test_forward_shapes(self, name):
        g = build_benchmark_model(name)
        initialize(g, 0)
        shapes = infer_shapes(g)
        x = np.random.default_rng(0).standard_normal((2, *g.input_shape)).astype(np.float32)
        logits, _, _ = forward(g, x)
        assert logits.shape == (2, shapes[g.output_name][0])

    def test_benchmark_dataset_pairings(self):
        assert BENCHMARKS["vgg19"].dataset == "cifar100-syn"
        assert BENCHMARKS["googlenet"].dataset == "cifar10-syn"
        assert BENCHMARKS["resnet50"].dataset == "imagenet-syn"
        assert BENCHMARKS["densenet169"].dataset == "imagenet-syn"


class TestSyntheticDatasets:
    def test_deterministic_generation(self):
        a = make_dataset("cifar10-syn", train_per_class=4, test_per_class=2)
        b = make_dataset("cifar10-syn", train_per_class=4, test_per_class=2)
        np.testing.assert_array_equal(a.train_x, b.train_x)
        np.testing.assert_array_equal(a.test_y, b.test_y)

    def test_split_sizes_and_shapes(self):
        ds = make_dataset("cifar10-syn", train_per_class=6, test_per_class=3)
        assert ds.train_x.shape == (60, 3, 32, 32)
        assert ds.test_x.shape == (30, 3, 32, 32)
        assert ds.input_shape == (3, 32, 32)

    def test_all_classes_present(self):
        ds = make_dataset("cifar10-syn", train_per_class=4, test_per_class=2)
        assert set(ds.train_y.tolist()) == set(range(10))

    def test_standardized(self):
        ds = make_dataset("cifar10-syn", train_per_class=20, test_per_class=5)
        assert abs(float(ds.train_x.mean())) < 0.05
        assert abs(float(ds.train_x.std()) - 1.0) < 0.05

    def test_unknown_preset_raises(self):
        with pytest.raises(ConfigurationError):
            make_dataset("mnist")

    def test_custom_spec(self):
        spec = DatasetSpec(name="x", classes=3, image_size=8, channels=1)
        ds = make_dataset(spec, train_per_class=2, test_per_class=1)
        assert ds.train_x.shape == (6, 1, 8, 8)

    def test_seed_changes_data(self):
        a = make_dataset("cifar10-syn", train_per_class=4, test_per_class=2, seed=1)
        b = make_dataset("cifar10-syn", train_per_class=4, test_per_class=2, seed=2)
        assert not np.array_equal(a.train_x, b.train_x)

    def test_presets_match_paper_class_structure(self):
        assert DATASET_PRESETS["cifar10-syn"].classes == 10
        assert DATASET_PRESETS["cifar100-syn"].classes > 10
