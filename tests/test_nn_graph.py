"""Tests for the graph IR."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.nn import GraphBuilder
from repro.nn.graph import Graph, Node


class TestGraphValidation:
    def test_rejects_unknown_op(self):
        g = Graph("t", (3, 8, 8))
        with pytest.raises(ConfigurationError):
            g.add_node(Node("x", "transmogrify", (), {}))

    def test_rejects_duplicate_name(self):
        b = GraphBuilder("t", (3, 8, 8))
        b.conv2d(b.input_node, 4, 3, name="c")
        with pytest.raises(ConfigurationError):
            b.conv2d(b.input_node, 4, 3, name="c")

    def test_rejects_unknown_input(self):
        g = Graph("t", (3, 8, 8))
        with pytest.raises(ConfigurationError):
            g.add_node(Node("x", "relu", ("ghost",), {}))

    def test_rejects_unknown_output(self):
        g = Graph("t", (3, 8, 8))
        with pytest.raises(ConfigurationError):
            g.set_output("ghost")


class TestGraphQueries:
    def _small_graph(self):
        b = GraphBuilder("t", (3, 8, 8))
        x = b.conv2d(b.input_node, 4, 3, padding=1, name="c1")
        y = b.relu(x, name="r1")
        z = b.add(x, y, name="a1")
        b.output(b.linear(b.flatten(z, name="f1"), 2, name="fc"))
        return b.graph

    def test_consumers(self):
        g = self._small_graph()
        consumers = {n.name for n in g.consumers("c1")}
        assert consumers == {"r1", "a1"}

    def test_conv_and_linear_nodes(self):
        g = self._small_graph()
        assert [n.name for n in g.conv_and_linear_nodes()] == ["c1", "fc"]

    def test_contains_and_len(self):
        g = self._small_graph()
        assert "c1" in g and "ghost" not in g
        assert len(g) == 6  # input, c1, r1, a1, f1, fc


class TestStateDict:
    def test_roundtrip(self, tiny_trained):
        state = tiny_trained.state_dict()
        import copy

        from tests._helpers import build_tiny_cnn
        from repro.nn import initialize

        fresh = build_tiny_cnn()
        initialize(fresh, 123)
        fresh.load_state_dict(state)
        for key, arr in fresh.state_dict().items():
            np.testing.assert_array_equal(arr, state[key])

    def test_rejects_unknown_key(self, tiny_trained):
        with pytest.raises(ConfigurationError):
            tiny_trained.load_state_dict({"param/ghost/weight": np.zeros(1)})

    def test_rejects_shape_mismatch(self, tiny_trained):
        state = tiny_trained.state_dict()
        key = next(iter(state))
        with pytest.raises(ConfigurationError):
            tiny_trained.load_state_dict({key: np.zeros((1, 1, 1))})

    def test_num_parameters_positive(self, tiny_trained):
        assert tiny_trained.num_parameters() > 1000
