"""Numerical gradient checks for every differentiable graph op.

These pin the correctness of the training substrate: each op's analytic
backward is compared against central finite differences on small tensors.
"""

import numpy as np
import pytest

from repro.nn import GraphBuilder, forward_backward, initialize
from repro.nn.executor import forward


def numeric_param_grad(graph, x, labels, node, param, eps=1e-3):
    """Central-difference gradient of the loss w.r.t. one parameter array."""
    from repro.nn.loss import cross_entropy_with_logits

    arr = graph.params[node][param]
    grad = np.zeros_like(arr, dtype=np.float64)
    flat = arr.reshape(-1)
    grad_flat = grad.reshape(-1)
    for i in range(flat.size):
        orig = flat[i]
        flat[i] = orig + eps
        lp, _ = cross_entropy_with_logits(forward(graph, x, train=True)[0], labels)
        flat[i] = orig - eps
        lm, _ = cross_entropy_with_logits(forward(graph, x, train=True)[0], labels)
        flat[i] = orig
        grad_flat[i] = (lp - lm) / (2 * eps)
    return grad


def build_and_check(builder_fn, input_shape, seed=0, atol=2e-3):
    """Build a micro-graph, run analytic + numeric grads, compare."""
    from repro.nn.loss import make_cross_entropy_grad_fn

    b = GraphBuilder("g", input_shape)
    builder_fn(b)
    graph = b.graph
    initialize(graph, seed)
    rng = np.random.default_rng(seed)
    x = rng.standard_normal((4, *input_shape)).astype(np.float32)
    labels = rng.integers(0, 2, size=4)

    _, grads = forward_backward(graph, x, make_cross_entropy_grad_fn(labels))
    for node, group in grads.items():
        for param, analytic in group.items():
            numeric = numeric_param_grad(graph, x, labels, node, param)
            np.testing.assert_allclose(
                analytic, numeric, atol=atol,
                err_msg=f"gradient mismatch at {node}/{param}",
            )


class TestParameterGradients:
    def test_conv_gradients(self):
        def net(b):
            x = b.conv2d(b.input_node, 3, kernel=3, padding=1, name="c")
            b.output(b.linear(b.flatten(x), 2, name="fc"))

        build_and_check(net, (2, 5, 5))

    def test_strided_conv_gradients(self):
        def net(b):
            x = b.conv2d(b.input_node, 3, kernel=3, stride=2, padding=1, name="c")
            b.output(b.linear(b.flatten(x), 2, name="fc"))

        build_and_check(net, (2, 7, 7))

    def test_batchnorm_gradients(self):
        def net(b):
            x = b.conv2d(b.input_node, 3, kernel=1, name="c")
            x = b.batchnorm2d(x, name="bn")
            b.output(b.linear(b.flatten(x), 2, name="fc"))

        build_and_check(net, (2, 4, 4), atol=5e-3)

    def test_linear_gradients(self):
        def net(b):
            x = b.flatten(b.input_node)
            x = b.relu(b.linear(x, 6, name="l1"))
            b.output(b.linear(x, 2, name="l2"))

        build_and_check(net, (2, 3, 3))


class TestStructuralGradients:
    """Input-gradient flow through pooling / residual / concat paths,
    validated end-to-end via the parameter gradients upstream of them."""

    def test_maxpool_path(self):
        def net(b):
            x = b.conv2d(b.input_node, 3, kernel=3, padding=1, name="c")
            x = b.maxpool2d(x, kernel=2, stride=2)
            b.output(b.linear(b.flatten(x), 2, name="fc"))

        build_and_check(net, (2, 6, 6))

    def test_avgpool_path(self):
        def net(b):
            x = b.conv2d(b.input_node, 3, kernel=3, padding=1, name="c")
            x = b.avgpool2d(x, kernel=2, stride=2)
            b.output(b.linear(b.flatten(x), 2, name="fc"))

        build_and_check(net, (2, 6, 6))

    def test_globalavgpool_path(self):
        def net(b):
            x = b.conv2d(b.input_node, 4, kernel=3, padding=1, name="c")
            x = b.globalavgpool(x)
            b.output(b.linear(b.flatten(x), 2, name="fc"))

        build_and_check(net, (2, 5, 5))

    def test_residual_add_path(self):
        def net(b):
            x = b.conv2d(b.input_node, 3, kernel=3, padding=1, name="c1")
            y = b.conv2d(x, 3, kernel=3, padding=1, name="c2")
            z = b.add(x, y)
            b.output(b.linear(b.flatten(z), 2, name="fc"))

        build_and_check(net, (2, 4, 4))

    def test_concat_path(self):
        def net(b):
            x = b.conv2d(b.input_node, 2, kernel=1, name="c1")
            y = b.conv2d(b.input_node, 3, kernel=1, name="c2")
            z = b.concat([x, y])
            b.output(b.linear(b.flatten(z), 2, name="fc"))

        build_and_check(net, (2, 4, 4))

    def test_fanout_grad_accumulation(self):
        """A node feeding two consumers must receive summed gradients."""

        def net(b):
            x = b.conv2d(b.input_node, 3, kernel=1, name="c")
            a = b.relu(x, name="ra")
            z = b.add(a, x)
            b.output(b.linear(b.flatten(z), 2, name="fc"))

        build_and_check(net, (2, 3, 3))
