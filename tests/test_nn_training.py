"""Tests for shapes, loss, optimizers and the training loop."""

import numpy as np
import pytest

from repro.errors import ShapeError, TrainingError
from repro.nn import (
    SGD,
    Adam,
    GraphBuilder,
    TrainConfig,
    cross_entropy_with_logits,
    evaluate_accuracy,
    forward,
    infer_shapes,
    initialize,
    softmax,
    train,
)


class TestInferShapes:
    def test_vgg_like_shapes(self):
        b = GraphBuilder("t", (3, 32, 32))
        x = b.conv2d(b.input_node, 8, 3, padding=1, name="c1")
        x = b.maxpool2d(x, 2, name="p1")
        x = b.conv2d(x, 16, 3, stride=2, padding=1, name="c2")
        x = b.globalavgpool(x, name="g")
        x = b.flatten(x, name="f")
        b.output(b.linear(x, 10, name="fc"))
        shapes = infer_shapes(b.graph)
        assert shapes["c1"] == (8, 32, 32)
        assert shapes["p1"] == (8, 16, 16)
        assert shapes["c2"] == (16, 8, 8)
        assert shapes["g"] == (16, 1, 1)
        assert shapes["f"] == (16,)
        assert shapes["fc"] == (10,)

    def test_concat_channel_sum(self):
        b = GraphBuilder("t", (3, 8, 8))
        x = b.conv2d(b.input_node, 4, 1, name="c1")
        y = b.conv2d(b.input_node, 6, 1, name="c2")
        z = b.concat([x, y], name="cat")
        b.output(b.flatten(z, name="f"))
        assert infer_shapes(b.graph)["cat"] == (10, 8, 8)

    def test_add_mismatch_raises(self):
        b = GraphBuilder("t", (3, 8, 8))
        x = b.conv2d(b.input_node, 4, 1, name="c1")
        y = b.conv2d(b.input_node, 6, 1, name="c2")
        b.add(x, y, name="bad")
        with pytest.raises(ShapeError):
            infer_shapes(b.graph)

    def test_shapes_match_execution(self, tiny_trained, tiny_dataset):
        shapes = infer_shapes(tiny_trained)
        _, acts, _ = forward(tiny_trained, tiny_dataset.test_x[:2])
        for name, shape in shapes.items():
            assert acts[name].shape[1:] == tuple(shape)


class TestLoss:
    def test_softmax_normalizes(self, rng):
        probs = softmax(rng.standard_normal((5, 7)))
        np.testing.assert_allclose(probs.sum(axis=1), 1.0, atol=1e-12)

    def test_perfect_prediction_low_loss(self):
        logits = np.array([[100.0, 0.0], [0.0, 100.0]])
        loss, grad = cross_entropy_with_logits(logits, np.array([0, 1]))
        assert loss < 1e-6
        assert np.abs(grad).max() < 1e-6

    def test_gradient_sums_to_zero_per_row(self, rng):
        logits = rng.standard_normal((4, 5))
        _, grad = cross_entropy_with_logits(logits, np.array([0, 1, 2, 3]))
        np.testing.assert_allclose(grad.sum(axis=1), 0.0, atol=1e-7)


class TestOptimizers:
    def _quadratic_graph(self):
        b = GraphBuilder("q", (1, 1, 1))
        x = b.flatten(b.input_node)
        b.output(b.linear(x, 2, name="fc"))
        g = b.graph
        initialize(g, 0)
        return g

    @pytest.mark.parametrize("optimizer_cls,lr", [(SGD, 0.1), (Adam, 0.05)])
    def test_reduces_loss(self, optimizer_cls, lr):
        from repro.nn import forward_backward, make_cross_entropy_grad_fn

        g = self._quadratic_graph()
        opt = optimizer_cls(g, lr)
        x = np.array([[[[1.0]]], [[[-1.0]]]], dtype=np.float32)
        labels = np.array([0, 1])
        losses = []
        for _ in range(30):
            loss, grads = forward_backward(g, x, make_cross_entropy_grad_fn(labels))
            opt.step(grads)
            losses.append(loss)
        assert losses[-1] < losses[0] * 0.5

    def test_rejects_bad_lr(self):
        with pytest.raises(ValueError):
            SGD(self._quadratic_graph(), lr=-1.0)

    def test_weight_decay_shrinks_weights(self):
        g = self._quadratic_graph()
        opt = SGD(g, lr=0.1, momentum=0.0, weight_decay=1.0)
        before = np.abs(g.params["fc"]["weight"]).sum()
        opt.step({"fc": {"weight": np.zeros_like(g.params["fc"]["weight"])}})
        after = np.abs(g.params["fc"]["weight"]).sum()
        assert after < before


class TestTrainLoop:
    def test_trains_to_high_accuracy(self, tiny_trained, tiny_dataset):
        accuracy = evaluate_accuracy(
            tiny_trained, tiny_dataset.test_x, tiny_dataset.test_y
        )
        assert accuracy > 0.8

    def test_early_stop_respects_target(self, tiny_dataset):
        from tests._helpers import build_tiny_cnn

        g = build_tiny_cnn()
        initialize(g, 1)
        result = train(
            g,
            Adam(g, 3e-3),
            tiny_dataset.train_x,
            tiny_dataset.train_y,
            tiny_dataset.test_x,
            tiny_dataset.test_y,
            TrainConfig(epochs=50, batch_size=32, target_accuracy=0.5),
        )
        assert result.epochs_run < 50

    def test_length_mismatch_raises(self, tiny_dataset):
        from tests._helpers import build_tiny_cnn

        g = build_tiny_cnn()
        initialize(g, 0)
        with pytest.raises(TrainingError):
            train(
                g,
                Adam(g, 1e-3),
                tiny_dataset.train_x,
                tiny_dataset.train_y[:-5],
                tiny_dataset.test_x,
                tiny_dataset.test_y,
                TrainConfig(epochs=1),
            )
