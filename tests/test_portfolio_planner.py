"""Portfolio planner: per-layer scheme selection among {none, ABFT, TMR}.

The journal-extension planner (:func:`repro.tmr.plan_portfolio`) grows a
mixed-scheme plan along the coverage ladder none → ABFT → TMR.  These tests
pin

* convergence and scheme selection on the tiny fixture model,
* the cost model ordering that motivates the portfolio (a layer's checksum
  is orders cheaper than replicating it),
* the single-scheme restrictions (``allowed=``) used for the comparison
  curves,
* engine/speculative parity — the planner trajectory is bit-identical for
  any worker count and with speculation on or off (CI tier-2 re-runs this
  module with ``REPRO_PARITY_WORKERS=2``), and
* the serialization contract: scheme-free (legacy TMR) results keep the
  historical payload, portfolio results add a ``"schemes"`` map.
"""

from __future__ import annotations

import os

import pytest

from repro.errors import ConfigurationError
from repro.faultsim import CampaignConfig, ProtectionPlan, SCHEME_ABFT, SCHEME_TMR
from repro.runtime import CampaignEngine
from repro.tmr import (
    PROTECTION_ABFT,
    PROTECTION_PORTFOLIO,
    PROTECTION_TMR,
    abft_overhead_energy,
    plan_portfolio,
    plan_tmr,
    portfolio_overhead_energy,
    run_protection_portfolio,
    tmr_overhead_energy,
)
from repro.tmr.cost import OpCostModel

#: Worker count for the multi-worker regime (CI tier-2 sets this to 2).
PARITY_WORKERS = int(os.environ.get("REPRO_PARITY_WORKERS", "4"))

HARD_BER = 5e-4
CONFIG = CampaignConfig(seeds=(0, 1), batch_size=24, max_samples=24)


def ranking_for(qm):
    return [(layer.name, 1.0) for layer in qm.injectable_layers()]


def target_for(qm, x, y, fraction=0.9):
    """Accuracy goal relative to the fault-free score (always reachable)."""
    return qm.evaluate(x[:24], y[:24]) * fraction


def plan_summary(result):
    """Everything observable about a planning run, for exact comparison."""
    return {
        "iterations": result.iterations,
        "converged": result.converged,
        "achieved_accuracy": result.achieved_accuracy,
        "overhead_energy": result.overhead_energy,
        "history": result.history,
        "fractions": dict(result.plan.fractions),
        "schemes": dict(result.plan.schemes),
    }


class TestPortfolioPlanning:
    def test_converges_and_assigns_schemes(self, tiny_quantized, tiny_eval):
        qm, _ = tiny_quantized
        x, y = tiny_eval
        result = plan_portfolio(
            qm, x, y, HARD_BER, target_for(qm, x, y), ranking_for(qm),
            config=CONFIG,
        )
        assert result.converged
        assert result.achieved_accuracy >= result.target_accuracy
        assert result.iterations > 1, "regression guard: goal must be non-trivial"
        assert result.plan.schemes, "convergence must require protecting layers"
        assert set(result.plan.schemes.values()) <= {SCHEME_ABFT, SCHEME_TMR}
        assert result.overhead_energy == portfolio_overhead_energy(
            qm, result.plan, OpCostModel(width=qm.config.width)
        )

    def test_allowed_restricts_schemes(self, tiny_quantized, tiny_eval):
        qm, _ = tiny_quantized
        x, y = tiny_eval
        target = target_for(qm, x, y)
        abft_only = plan_portfolio(
            qm, x, y, HARD_BER, target, ranking_for(qm), config=CONFIG,
            allowed=(SCHEME_ABFT,),
        )
        assert set(abft_only.plan.schemes.values()) == {SCHEME_ABFT}
        tmr_only = plan_portfolio(
            qm, x, y, HARD_BER, target, ranking_for(qm), config=CONFIG,
            allowed=(SCHEME_TMR,),
        )
        assert set(tmr_only.plan.schemes.values()) == {SCHEME_TMR}
        # Whole-layer TMR means every present category fully replicated.
        for (layer, _category), fraction in tmr_only.plan.fractions.items():
            if layer in tmr_only.plan.schemes:
                assert fraction == 1.0

    def test_portfolio_never_costlier_than_tmr_only(
        self, tiny_quantized, tiny_eval
    ):
        """The point of the portfolio: same goal, no more energy."""
        qm, _ = tiny_quantized
        x, y = tiny_eval
        target = target_for(qm, x, y)
        mixed = plan_portfolio(
            qm, x, y, HARD_BER, target, ranking_for(qm), config=CONFIG
        )
        tmr_only = plan_portfolio(
            qm, x, y, HARD_BER, target, ranking_for(qm), config=CONFIG,
            allowed=(SCHEME_TMR,),
        )
        assert mixed.converged and tmr_only.converged
        assert mixed.overhead_energy <= tmr_only.overhead_energy

    def test_abft_checksum_cheaper_than_layer_tmr(self, tiny_quantized):
        """Cost-model sanity: per layer, the checksum costs a small fraction
        of full replication (what makes mixed plans win)."""
        qm, _ = tiny_quantized
        cost_model = OpCostModel(width=qm.config.width)
        for layer in qm.injectable_layers():
            abft = abft_overhead_energy(qm, (layer.name,), cost_model)
            tmr_plan = ProtectionPlan()
            for category, n_ops in layer.op_counts.by_category().items():
                if n_ops:
                    tmr_plan.set(layer.name, category, 1.0)
            tmr = tmr_overhead_energy(qm, tmr_plan, cost_model)
            assert 0 < abft < tmr

    def test_validation_errors(self, tiny_quantized, tiny_eval):
        qm, _ = tiny_quantized
        x, y = tiny_eval
        with pytest.raises(ConfigurationError, match="allowed"):
            plan_portfolio(
                qm, x, y, HARD_BER, 0.85, ranking_for(qm), config=CONFIG,
                allowed=(),
            )
        with pytest.raises(ConfigurationError, match="allowed"):
            plan_portfolio(
                qm, x, y, HARD_BER, 0.85, ranking_for(qm), config=CONFIG,
                allowed=("bogus",),
            )
        with pytest.raises(ConfigurationError, match="abft_coverage"):
            plan_portfolio(
                qm, x, y, HARD_BER, 0.85, ranking_for(qm), config=CONFIG,
                abft_coverage=1.5,
            )


class TestPortfolioParity:
    """Serial == engine pool == speculative, full trajectory included."""

    def test_engine_worker_parity(self, tiny_quantized, tiny_eval):
        qm, _ = tiny_quantized
        x, y = tiny_eval
        target = target_for(qm, x, y)
        serial = plan_portfolio(
            qm, x, y, HARD_BER, target, ranking_for(qm), config=CONFIG
        )
        pooled = plan_portfolio(
            qm, x, y, HARD_BER, target, ranking_for(qm), config=CONFIG,
            engine=CampaignEngine(workers=PARITY_WORKERS),
        )
        assert plan_summary(pooled) == plan_summary(serial)

    def test_speculative_parity(self, tiny_quantized, tiny_eval):
        qm, _ = tiny_quantized
        x, y = tiny_eval
        target = target_for(qm, x, y)
        serial = plan_portfolio(
            qm, x, y, HARD_BER, target, ranking_for(qm), config=CONFIG
        )
        for lookahead in (None, 2):
            speculative = plan_portfolio(
                qm, x, y, HARD_BER, target, ranking_for(qm), config=CONFIG,
                speculative=True, lookahead=lookahead,
                engine=CampaignEngine(workers=PARITY_WORKERS),
            )
            assert plan_summary(speculative) == plan_summary(serial), (
                f"lookahead={lookahead}"
            )

    def test_to_dict_schemes_only_on_portfolio_plans(
        self, tiny_quantized, tiny_eval
    ):
        """Legacy plan_tmr payloads are unchanged; portfolio adds schemes."""
        qm, _ = tiny_quantized
        x, y = tiny_eval
        target = target_for(qm, x, y, fraction=0.8)
        legacy = plan_tmr(
            qm, x, y, HARD_BER, target, ranking_for(qm), config=CONFIG, step=0.5
        )
        assert "schemes" not in legacy.to_dict()
        portfolio = plan_portfolio(
            qm, x, y, HARD_BER, target_for(qm, x, y), ranking_for(qm),
            config=CONFIG,
        )
        assert portfolio.plan.schemes, "guard: goal must force scheme upgrades"
        payload = portfolio.to_dict()
        assert payload["schemes"] == dict(sorted(portfolio.plan.schemes.items()))


class TestProtectionPortfolioCurves:
    def test_strategy_curves(self, tiny_quantized, tiny_eval):
        qm, _ = tiny_quantized
        x, y = tiny_eval
        fault_free = qm.evaluate(x[:24], y[:24])
        goals = [fault_free * 0.7, fault_free * 0.9]
        curves = run_protection_portfolio(
            qm, x, y, HARD_BER, goals, config=CONFIG
        )
        assert set(curves) == {
            PROTECTION_TMR, PROTECTION_ABFT, PROTECTION_PORTFOLIO
        }
        for curve in curves.values():
            assert curve.goals == sorted(goals)
            assert len(curve.results) == len(goals)
            assert all(r.converged for r in curve.results)
        assert (
            curves[PROTECTION_PORTFOLIO].overheads[-1]
            <= curves[PROTECTION_TMR].overheads[-1]
        )

    def test_engine_parity(self, tiny_quantized, tiny_eval):
        qm, _ = tiny_quantized
        x, y = tiny_eval
        goals = [qm.evaluate(x[:24], y[:24]) * 0.9]
        serial = run_protection_portfolio(
            qm, x, y, HARD_BER, goals, config=CONFIG
        )
        pooled = run_protection_portfolio(
            qm, x, y, HARD_BER, goals, config=CONFIG,
            engine=CampaignEngine(workers=PARITY_WORKERS),
        )
        assert set(pooled) == set(serial)
        for name in serial:
            assert pooled[name].to_dict() == serial[name].to_dict()

    def test_unknown_strategy_rejected(self, tiny_quantized, tiny_eval):
        qm, _ = tiny_quantized
        x, y = tiny_eval
        with pytest.raises(ConfigurationError, match="strategies"):
            run_protection_portfolio(
                qm, x, y, HARD_BER, [0.8], config=CONFIG, strategies=("bogus",)
            )
        with pytest.raises(ConfigurationError, match="strategies"):
            run_protection_portfolio(
                qm, x, y, HARD_BER, [0.8], config=CONFIG, strategies=()
            )
