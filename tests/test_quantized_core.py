"""Tests for BN folding, quantization and quantized node semantics."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.fixedpoint import QFormat
from repro.nn import GraphBuilder, forward, initialize
from repro.quantized import (
    QuantConfig,
    bn_affine_coefficients,
    fold_batchnorm,
    quantize_model,
)
from repro.quantized.quantizer import folded_float_forward


class TestQuantConfig:
    def test_rejects_odd_width(self):
        with pytest.raises(ConfigurationError):
            QuantConfig(width=12)

    def test_rejects_bad_tile(self):
        with pytest.raises(ConfigurationError):
            QuantConfig(wg_tile=3)

    def test_acc_width(self):
        assert QuantConfig(width=16, acc_guard=4).acc_width == 20


class TestBnFolding:
    def test_conv_bn_pair_folds(self, tiny_trained):
        folded = fold_batchnorm(tiny_trained)
        # Both BNs in the tiny CNN follow convs exclusively -> none remain.
        assert not any(n.op == "batchnorm2d" for n in folded)

    def test_folded_outputs_match_eval_forward(self, tiny_trained, tiny_dataset):
        x = tiny_dataset.test_x[:8]
        expected, _, _ = forward(tiny_trained, x, train=False)
        acts = folded_float_forward(fold_batchnorm(tiny_trained), x)
        np.testing.assert_allclose(
            acts[tiny_trained.output_name], expected, atol=1e-3, rtol=1e-3
        )

    def test_unfoldable_bn_becomes_affine(self):
        """Pre-activation BN (DenseNet style) must survive as affine."""
        b = GraphBuilder("t", (3, 8, 8))
        x = b.batchnorm2d(b.input_node, name="bn")
        x = b.relu(x)
        x = b.conv2d(x, 4, 3, padding=1, name="c")
        b.output(b.flatten(x))
        g = b.graph
        initialize(g, 0)
        folded = fold_batchnorm(g)
        assert any(n.op == "batchnorm2d" for n in folded)
        assert "scale" in folded.params["bn"]

    def test_shared_conv_output_not_folded(self):
        """A conv feeding BN *and* another consumer must stay unfolded."""
        b = GraphBuilder("t", (3, 8, 8))
        c = b.conv2d(b.input_node, 4, 3, padding=1, name="c")
        bn = b.batchnorm2d(c, name="bn")
        z = b.add(bn, c)
        b.output(b.flatten(z))
        g = b.graph
        initialize(g, 0)
        folded = fold_batchnorm(g)
        assert any(n.op == "batchnorm2d" for n in folded)

    def test_affine_coefficients_identity_at_init(self, tiny_trained):
        """gamma=1, beta=0, mean~0, var~1 gives scale~1, shift~0 — but the
        trained net has adapted stats; just verify algebraic consistency."""
        scale, shift = bn_affine_coefficients(tiny_trained, "b1")
        node = tiny_trained.node("b1")
        gamma = tiny_trained.params["b1"]["gamma"]
        var = tiny_trained.buffers["b1"]["running_var"]
        np.testing.assert_allclose(
            scale, gamma / np.sqrt(var + node.attrs["eps"]), rtol=1e-6
        )


class TestQuantizeModel:
    def test_int16_matches_float_closely(self, tiny_trained, tiny_dataset, tiny_quantized):
        qm_st, _ = tiny_quantized
        x = tiny_dataset.test_x[:16]
        float_logits, _, _ = forward(tiny_trained, x)
        quant_logits = qm_st.logits(x)
        assert np.abs(quant_logits - float_logits).max() < 0.05

    def test_int8_accuracy_close_to_float(self, tiny_trained, tiny_dataset):
        qm = quantize_model(
            tiny_trained, tiny_dataset.train_x[:64], QuantConfig(width=8), "standard"
        )
        accuracy = qm.evaluate(tiny_dataset.test_x, tiny_dataset.test_y)
        assert accuracy > 0.7

    def test_rejects_unknown_mode(self, tiny_trained, tiny_dataset):
        with pytest.raises(ConfigurationError):
            quantize_model(tiny_trained, tiny_dataset.train_x[:8], conv_mode="fft")

    def test_one_by_one_convs_stay_direct_in_wg_mode(self, tiny_dataset):
        b = GraphBuilder("t", (3, 8, 8))
        x = b.conv2d(b.input_node, 4, 1, name="c1x1")
        x = b.conv2d(x, 4, 3, padding=1, name="c3x3")
        b.output(b.flatten(x))
        g = b.graph
        initialize(g, 0)
        calib = np.random.default_rng(0).standard_normal((8, 3, 8, 8)).astype(np.float32)
        qm = quantize_model(g, calib, QuantConfig(width=16), "winograd")
        kinds = {layer.name: layer.op for layer in qm.injectable_layers()}
        assert kinds["c1x1"] == "QConvDirect"
        assert kinds["c3x3"] == "QConvWinograd"

    def test_op_counts_attached(self, tiny_quantized):
        qm_st, qm_wg = tiny_quantized
        assert qm_st.total_op_counts().st_mul > 0
        assert qm_wg.total_op_counts().wg_mul > 0
        assert qm_wg.total_op_counts().st_mul > 0  # the linear layer

    def test_output_format_sane(self, tiny_quantized):
        qm_st, _ = tiny_quantized
        assert isinstance(qm_st.output_fmt, QFormat)
        assert qm_st.output_fmt.width == 16


class TestQuantizedNodeSemantics:
    def test_maxpool_padding_uses_qmin(self):
        from repro.quantized.qops import QMaxPool

        node = QMaxPool("p", ("x",), QFormat(8, 0), kernel=3, stride=1, padding=1)
        x = np.full((1, 1, 2, 2), -5, dtype=np.int64)
        out = node.forward([x])
        # Padding must never win the max: all outputs stay -5.
        assert out.max() == -5

    def test_avgpool_exact_rounding(self):
        from repro.quantized.qops import QAvgPool

        node = QAvgPool("p", ("x",), QFormat(8, 0), kernel=2, stride=2)
        x = np.array([[[[1, 2], [3, 5]]]], dtype=np.int64)
        # mean = 11/4 = 2.75 -> rounds to 3.
        assert node.forward([x])[0, 0, 0, 0] == 3

    def test_qadd_harmonizes_formats(self):
        from repro.quantized.qops import QAdd

        node = QAdd(
            "a", ("x", "y"), QFormat(16, 4),
            in_fmts=(QFormat(16, 6), QFormat(16, 2)),
        )
        a = np.array([64], dtype=np.int64)  # 1.0 at frac 6
        b = np.array([4], dtype=np.int64)  # 1.0 at frac 2
        out = node.forward([a, b])
        assert out[0] == 32  # 2.0 at frac 4

    def test_qconcat_rescales_to_coarsest(self):
        from repro.quantized.qops import QConcat

        node = QConcat(
            "c", ("x", "y"), QFormat(16, 2),
            in_fmts=(QFormat(16, 4), QFormat(16, 2)),
        )
        a = np.full((1, 1, 1, 1), 16, dtype=np.int64)  # 4.0 at frac 4
        b = np.full((1, 2, 1, 1), 8, dtype=np.int64)  # 2.0 at frac 2
        out = node.forward([a, b])
        assert out[0, 0, 0, 0] == 4  # 4.0 at frac 2
        assert out.shape == (1, 3, 1, 1)

    def test_qaffine_applies_scale_shift(self):
        from repro.quantized.qops import QAffine

        node = QAffine(
            "bn", ("x",), QFormat(16, 8),
            mult_int=np.array([2 << QAffine.SHIFT], dtype=np.int64),
            shift_int=np.array([10], dtype=np.int64),
            in_fmt=QFormat(16, 8),
        )
        x = np.full((1, 1, 1, 1), 100, dtype=np.int64)
        assert node.forward([x])[0, 0, 0, 0] == 210
