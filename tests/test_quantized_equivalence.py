"""The library's load-bearing invariant: quantized Winograd execution is
bit-identical to quantized direct convolution in the fault-free case.

This realizes the paper's premise that Winograd is a lossless rewrite, so
any accuracy difference between the two modes under fault injection is
attributable to the injected faults alone.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn import GraphBuilder, initialize
from repro.quantized import QuantConfig, quantize_model


def random_conv_graph(kernel, stride, channels, seed):
    b = GraphBuilder("g", (3, 12, 12))
    x = b.conv2d(
        b.input_node, channels, kernel, stride=stride, padding=kernel // 2, name="c1"
    )
    x = b.relu(x)
    x = b.conv2d(x, channels, 3, padding=1, name="c2")
    b.output(b.flatten(x))
    g = b.graph
    initialize(g, seed)
    return g


class TestBitIdentity:
    @pytest.mark.parametrize("width", [8, 16])
    def test_tiny_cnn(self, tiny_trained, tiny_dataset, width):
        calib = tiny_dataset.train_x[:64]
        qm_st = quantize_model(tiny_trained, calib, QuantConfig(width=width), "standard")
        qm_wg = quantize_model(tiny_trained, calib, QuantConfig(width=width), "winograd")
        x = tiny_dataset.test_x[:16]
        np.testing.assert_array_equal(qm_st.forward(x), qm_wg.forward(x))

    @pytest.mark.parametrize("wg_tile", [2, 4])
    def test_tile_sizes(self, tiny_trained, tiny_dataset, wg_tile):
        calib = tiny_dataset.train_x[:64]
        cfg = QuantConfig(width=16, wg_tile=wg_tile)
        qm_st = quantize_model(tiny_trained, calib, cfg, "standard")
        qm_wg = quantize_model(tiny_trained, calib, cfg, "winograd")
        x = tiny_dataset.test_x[:8]
        np.testing.assert_array_equal(qm_st.forward(x), qm_wg.forward(x))

    @pytest.mark.parametrize(
        "kernel,stride", [(3, 1), (3, 2), (5, 1), (7, 2)]
    )
    def test_dwm_kernels(self, kernel, stride):
        """Large kernels and strides go through DWM and must stay exact."""
        g = random_conv_graph(kernel, stride, channels=6, seed=3)
        rng = np.random.default_rng(0)
        calib = rng.standard_normal((16, 3, 12, 12)).astype(np.float32)
        qm_st = quantize_model(g, calib, QuantConfig(width=16), "standard")
        qm_wg = quantize_model(g, calib, QuantConfig(width=16), "winograd")
        x = rng.standard_normal((4, 3, 12, 12)).astype(np.float32)
        np.testing.assert_array_equal(qm_st.forward(x), qm_wg.forward(x))

    @settings(max_examples=10, deadline=None)
    @given(
        kernel=st.sampled_from([1, 3, 5]),
        stride=st.integers(1, 2),
        channels=st.integers(2, 8),
        seed=st.integers(0, 1000),
    )
    def test_bit_identity_hypothesis(self, kernel, stride, channels, seed):
        g = random_conv_graph(kernel, stride, channels, seed)
        rng = np.random.default_rng(seed)
        calib = rng.standard_normal((8, 3, 12, 12)).astype(np.float32)
        qm_st = quantize_model(g, calib, QuantConfig(width=16), "standard")
        qm_wg = quantize_model(g, calib, QuantConfig(width=16), "winograd")
        x = rng.standard_normal((2, 3, 12, 12)).astype(np.float32)
        np.testing.assert_array_equal(qm_st.forward(x), qm_wg.forward(x))

    def test_mul_census_reduced_by_winograd(self, tiny_quantized):
        qm_st, qm_wg = tiny_quantized
        assert qm_wg.total_op_counts().muls < qm_st.total_op_counts().muls
