"""Unit tests for the distributed backend's work-queue protocol.

The :class:`repro.runtime.WorkQueue` contract: claims are exclusive while
a lease is valid, expired leases are reclaimable (with the attempt budget
charged), the budget's exhaustion quarantines the task with its key in
the recorded error, and a settled queue sends workers home.  Expiry logic
is exercised with explicit ``now=`` timestamps — no sleeping — and the
double-claim exclusion with genuinely concurrent threads.
"""

from __future__ import annotations

import sqlite3
import threading
import time

import pytest

from repro.errors import ConfigurationError, QueueContentionError
from repro.runtime import Lease, RetryPolicy, WorkQueue
from repro.runtime.distributed import run_worker, write_payload
from repro.runtime.queue import (
    STATE_DONE,
    STATE_LEASED,
    STATE_PENDING,
    STATE_QUARANTINED,
)

KEYS = [f"task-{i:02d}" for i in range(6)]


def fill(queue, keys=KEYS):
    queue.enqueue((key, {"index": i}) for i, key in enumerate(keys))


class TestEnqueue:
    def test_enqueue_counts_new_rows_only(self, tmp_path):
        q = WorkQueue(tmp_path)
        assert q.enqueue((k, {}) for k in KEYS[:4]) == 4
        # Re-enqueueing existing keys (plus two new ones) adds only the new.
        assert q.enqueue((k, {}) for k in KEYS) == 2
        assert q.stats().pending == len(KEYS)

    def test_spec_round_trips(self, tmp_path):
        q = WorkQueue(tmp_path)
        q.enqueue([("k", {"index": 3, "tag": "fig2/st"})])
        lease = q.claim("w0")
        assert lease.spec == {"index": 3, "tag": "fig2/st"}

    def test_policy_validation(self, tmp_path):
        with pytest.raises(ConfigurationError, match="lease_timeout"):
            WorkQueue(tmp_path, lease_timeout=0.0)
        with pytest.raises(ConfigurationError, match="max_attempts"):
            WorkQueue(tmp_path, max_attempts=0)

    def test_creator_policy_wins(self, tmp_path):
        WorkQueue(tmp_path, lease_timeout=7.0, max_attempts=5)
        # A later opener's arguments are ignored: policy lives in the DB.
        q = WorkQueue(tmp_path, lease_timeout=99.0, max_attempts=1)
        assert q.lease_timeout == 7.0
        assert q.max_attempts == 5


class TestLeaseExpiry:
    def test_claim_orders_by_enqueue(self, tmp_path):
        q = WorkQueue(tmp_path)
        fill(q)
        assert [q.claim("w0").key for _ in range(3)] == KEYS[:3]

    def test_valid_lease_is_exclusive(self, tmp_path):
        q = WorkQueue(tmp_path, lease_timeout=30.0)
        fill(q, KEYS[:1])
        lease = q.claim("w0", now=100.0)
        assert isinstance(lease, Lease)
        assert lease.expires == 130.0
        assert q.claim("w1", now=129.9) is None

    def test_expired_lease_reclaims_at_boundary(self, tmp_path):
        q = WorkQueue(tmp_path, lease_timeout=30.0)
        fill(q, KEYS[:1])
        first = q.claim("w0", now=100.0)
        second = q.claim("w1", now=130.0)
        assert second is not None
        assert second.key == first.key
        assert second.attempt == 2
        assert q.task(second.key)["owner"] == "w1"

    def test_heartbeat_extends_lease(self, tmp_path):
        q = WorkQueue(tmp_path, lease_timeout=30.0)
        fill(q, KEYS[:1])
        q.claim("w0", now=100.0)
        assert q.heartbeat(KEYS[0], "w0", now=120.0)
        assert q.claim("w1", now=140.0) is None  # extended to 150
        assert q.claim("w1", now=150.0) is not None

    def test_heartbeat_reports_lost_lease(self, tmp_path):
        q = WorkQueue(tmp_path, lease_timeout=30.0)
        fill(q, KEYS[:1])
        q.claim("w0", now=100.0)
        q.claim("w1", now=200.0)  # reclaimed from w0
        assert not q.heartbeat(KEYS[0], "w0", now=201.0)
        assert q.heartbeat(KEYS[0], "w1", now=201.0)

    def test_complete_accepted_from_lost_lease(self, tmp_path):
        # Results are content-addressed: a double-computed task is
        # byte-identical, so either owner's completion is correct.
        q = WorkQueue(tmp_path, lease_timeout=30.0)
        fill(q, KEYS[:1])
        q.claim("w0", now=100.0)
        q.claim("w1", now=200.0)
        q.complete(KEYS[0], "w0")
        assert q.task(KEYS[0])["state"] == STATE_DONE
        assert q.stats().settled


class TestDoubleClaimExclusion:
    def test_concurrent_claimants_never_share_a_task(self, tmp_path):
        q = WorkQueue(tmp_path, lease_timeout=60.0)
        fill(q)  # 6 tasks, 12 claimants
        claims: list[Lease | None] = [None] * 12
        barrier = threading.Barrier(len(claims))

        def worker(slot):
            # Each thread opens its own connection inside claim(); the
            # barrier maximizes actual overlap of the BEGIN IMMEDIATE
            # transactions.
            barrier.wait()
            claims[slot] = q.claim(f"w{slot}")

        threads = [
            threading.Thread(target=worker, args=(i,)) for i in range(len(claims))
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        won = [lease for lease in claims if lease is not None]
        assert len(won) == len(KEYS)  # every task claimed exactly once
        assert sorted(lease.key for lease in won) == sorted(KEYS)
        assert all(lease.attempt == 1 for lease in won)


class TestRetryAndQuarantine:
    def test_fail_within_budget_returns_to_pending(self, tmp_path):
        q = WorkQueue(tmp_path, max_attempts=3)
        fill(q, KEYS[:1])
        q.claim("w0")
        assert not q.fail(KEYS[0], "w0", "ZeroDivisionError: boom")
        row = q.task(KEYS[0])
        assert row["state"] == STATE_PENDING
        assert row["error"] == "ZeroDivisionError: boom"
        assert q.claim("w1").attempt == 2

    def test_budget_exhaustion_quarantines_with_key_in_error(self, tmp_path):
        q = WorkQueue(tmp_path, max_attempts=2)
        fill(q, KEYS[:2])
        q.claim("w0")
        q.fail(KEYS[0], "w0", "first failure")
        q.claim("w0")
        assert q.fail(KEYS[0], "w0", "second failure")
        (key, attempts, error), = q.quarantined()
        assert key == KEYS[0]
        assert attempts == 2
        assert KEYS[0] in error  # the failing task key is in the error
        assert "second failure" in error
        # The poison task is never claimable again; the healthy one is.
        assert q.claim("w1").key == KEYS[1]
        assert q.claim("w1") is None

    def test_stale_reclaim_with_spent_budget_quarantines(self, tmp_path):
        q = WorkQueue(tmp_path, lease_timeout=30.0, max_attempts=1)
        fill(q, KEYS[:2])
        q.claim("w0", now=100.0)  # attempt 1 of 1, then the worker "dies"
        # The next claimant reclaims the expired lease, sees the budget
        # spent, quarantines it, and moves on to the healthy task.
        lease = q.claim("w1", now=200.0)
        assert lease.key == KEYS[1]
        (key, _, error), = q.quarantined()
        assert key == KEYS[0]
        assert key in error and "lease expired" in error

    def test_settled_states(self, tmp_path):
        q = WorkQueue(tmp_path, max_attempts=1)
        fill(q, KEYS[:3])
        lease = q.claim("w0")
        q.complete(lease.key, "w0")
        lease = q.claim("w0")
        q.fail(lease.key, "w0", "boom")
        assert q.has_work()  # one task still pending
        lease = q.claim("w0")
        q.complete(lease.key, "w0")
        assert not q.has_work()
        stats = q.stats()
        assert stats.settled
        assert (stats.done, stats.quarantined) == (2, 1)
        assert stats.total == 3
        assert q.task(KEYS[0])["state"] in (STATE_DONE, STATE_QUARANTINED)
        assert q.task("missing") is None

    def test_quarantine_survives_reopen(self, tmp_path):
        q = WorkQueue(tmp_path, max_attempts=1)
        fill(q, KEYS[:1])
        q.claim("w0")
        q.fail(KEYS[0], "w0", "boom")
        reopened = WorkQueue(tmp_path)
        assert reopened.quarantined()[0][0] == KEYS[0]
        assert reopened.task(KEYS[0])["state"] == STATE_QUARANTINED


class TestWorkerExit:
    def test_worker_exits_on_settled_queue(self, tmp_path):
        # A payload with an empty unit table is enough: the worker must
        # notice there is nothing claimable and nothing in flight, and
        # exit without evaluating anything.
        write_payload(tmp_path, None, None, None, None, [], replay=False)
        WorkQueue(tmp_path)
        assert run_worker(tmp_path, worker_id="w0") == 0

    def test_worker_exits_when_all_tasks_already_done(self, tmp_path):
        write_payload(tmp_path, None, None, None, None, [], replay=False)
        q = WorkQueue(tmp_path)
        fill(q, KEYS[:2])
        for key in KEYS[:2]:
            lease = q.claim("other")
            q.complete(lease.key, "other")
        assert run_worker(tmp_path, worker_id="w0") == 0

    def test_worker_leased_elsewhere_polls_then_exits(self, tmp_path):
        # One task, permanently leased by a live "other" worker: the
        # worker under test polls while the lease is valid and leaves
        # once the other completes it.
        write_payload(tmp_path, None, None, None, None, [], replay=False)
        q = WorkQueue(tmp_path, lease_timeout=60.0)
        fill(q, KEYS[:1])
        lease = q.claim("other")

        done = threading.Event()

        def finish_soon():
            done.wait(5.0)
            q.complete(lease.key, "other")

        finisher = threading.Thread(target=finish_soon)
        finisher.start()
        done.set()
        try:
            assert run_worker(tmp_path, worker_id="w0", poll=0.02) == 0
        finally:
            finisher.join()


class TestLockContention:
    """Bounded retry on ``database is locked`` (ISSUE satellite a).

    Every queue op runs under the shared I/O retry policy: transient
    lock storms are absorbed; a pathologically held write lock exhausts
    the budget and surfaces as a typed
    :class:`~repro.errors.QueueContentionError` naming the operation.
    """

    @staticmethod
    def locked_queue(tmp_path):
        """A queue whose database another connection holds EXCLUSIVE."""
        queue = WorkQueue(
            tmp_path,
            busy_timeout=0.05,
            io_retry=RetryPolicy(
                max_attempts=2, base_delay=0.01, max_delay=0.02, jitter=0.0
            ),
        )
        fill(queue, KEYS[:1])
        blocker = sqlite3.connect(
            str(queue.db_path),
            isolation_level=None,
            check_same_thread=False,  # released from a helper thread
        )
        blocker.execute("BEGIN EXCLUSIVE")
        return queue, blocker

    def test_exhausted_lock_retries_raise_typed_error(self, tmp_path):
        queue, blocker = self.locked_queue(tmp_path)
        try:
            with pytest.raises(QueueContentionError, match="'claim'"):
                queue.claim("w0")
            with pytest.raises(QueueContentionError, match="'stats'"):
                queue.stats()
        finally:
            blocker.close()

    def test_lock_released_mid_retry_recovers(self, tmp_path):
        queue, blocker = self.locked_queue(tmp_path)

        def release_soon():
            time.sleep(0.03)  # inside attempt 1's busy wait + backoff
            blocker.execute("ROLLBACK")

        releaser = threading.Thread(target=release_soon)
        releaser.start()
        try:
            lease = queue.claim("w0")  # absorbed: no error surfaces
            assert lease is not None and lease.key == KEYS[0]
        finally:
            releaser.join()
            blocker.close()

    def test_non_lock_operational_errors_propagate_untouched(self, tmp_path):
        queue = WorkQueue(tmp_path)
        queue.db_path.write_bytes(b"this is not a sqlite database\n")
        with pytest.raises(sqlite3.DatabaseError):
            queue.stats()
