"""Golden-run replay parity suite.

The acceptance gate of the dirty-sample replay executor
(:mod:`repro.faultsim.replay`): serving an evaluation from the golden-run
cache must be **bit-identical** to the full forward — accuracy, total
events and per-category event counts — for

* both injectors (operation- and neuron-level),
* both conv execution modes (standard and Winograd),
* BER 0 (pure cache lookup), a low BER (sparse dirty sets), and a
  knee-saturating BER (every sample dirty — replay degrades gracefully
  to a full recompute),
* sample slices recombined from a cache-backed engine with any worker
  count, including kill/resume at slice granularity.

CI tier-2 re-runs this module with ``REPRO_PARITY_WORKERS=2``.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.faultsim import (
    CampaignConfig,
    FaultModelConfig,
    NeuronLevelInjector,
    OperationLevelInjector,
    ProtectionPlan,
    ReplayStats,
    build_golden_run,
    combine_slice_results,
    evaluate_sample_slice,
    evaluate_seed_point,
    replay_forward,
    run_point,
)
from repro.runtime import CampaignEngine, TaskSpec

#: Worker count for the multi-worker regime (CI tier-2 sets this to 2).
PARITY_WORKERS = int(os.environ.get("REPRO_PARITY_WORKERS", "4"))

N_SAMPLES = 24
BATCH = 12

#: BER regimes the acceptance criteria pin: quiet (usually zero events),
#: low (sparse dirty sets — the regime replay accelerates), and
#: knee-saturating (every sample dirty — replay must still be exact).
BER_QUIET = 1e-12
BER_LOW = 2e-6
BER_KNEE = 2e-4
BER_SATURATE = 2e-3


def counter_config(injector="operation", seeds=(0, 1)):
    return CampaignConfig(
        seeds=seeds,
        batch_size=BATCH,
        max_samples=N_SAMPLES,
        injector=injector,
        fault_config=FaultModelConfig(rng_scheme="counter"),
    )


def golden_for(qm, x, config):
    return build_golden_run(
        qm,
        x[: config.max_samples],
        injector_kind=config.injector,
        fault_config=config.fault_config,
        batch_size=config.batch_size,
    )


def make_injector(config, ber, seed):
    if config.injector == "neuron":
        return NeuronLevelInjector(ber, seed=seed, config=config.fault_config)
    return OperationLevelInjector(ber, seed=seed, config=config.fault_config)


class TestReplayBitIdentity:
    """replay(evaluate_*) == full forward, element for element."""

    @pytest.mark.parametrize("injector", ["operation", "neuron"])
    @pytest.mark.parametrize("mode", ["standard", "winograd"])
    @pytest.mark.parametrize("ber", [0.0, BER_LOW, BER_KNEE])
    def test_seed_point_parity(self, tiny_quantized, tiny_eval, mode, injector, ber):
        qm = tiny_quantized[0] if mode == "standard" else tiny_quantized[1]
        x, y = tiny_eval
        config = counter_config(injector=injector)
        golden = golden_for(qm, x, config)
        full = evaluate_seed_point(qm, x, y, ber, 0, config=config)
        replayed = evaluate_seed_point(
            qm, x, y, ber, 0, config=config, golden=golden
        )
        assert (replayed.accuracy, replayed.events) == (full.accuracy, full.events)

    def test_knee_workload_injects_events(self, tiny_quantized, tiny_eval):
        """Guard: the knee BER actually exercises injection."""
        _, qm = tiny_quantized
        x, y = tiny_eval
        result = evaluate_seed_point(qm, x, y, BER_KNEE, 0, config=counter_config())
        assert result.events > 0

    @pytest.mark.parametrize("injector", ["operation", "neuron"])
    @pytest.mark.parametrize("mode", ["standard", "winograd"])
    def test_per_category_event_counts_match(
        self, tiny_quantized, tiny_eval, mode, injector
    ):
        """Not just totals: every diagnostics bucket sees the same events."""
        qm = tiny_quantized[0] if mode == "standard" else tiny_quantized[1]
        x, y = tiny_eval
        config = counter_config(injector=injector)
        golden = golden_for(qm, x, config)

        inj_full = make_injector(config, BER_KNEE, 1)
        qm.evaluate(x[:N_SAMPLES], y[:N_SAMPLES], injector=inj_full, batch_size=BATCH)
        inj_replay = make_injector(config, BER_KNEE, 1)
        replay_forward(qm, golden, inj_replay, (0, N_SAMPLES))
        assert dict(inj_full.event_counts) == dict(inj_replay.event_counts)

    @pytest.mark.parametrize("size", (1, 7, N_SAMPLES))
    def test_slices_recombine_bit_identically(self, tiny_quantized, tiny_eval, size):
        _, qm = tiny_quantized
        x, y = tiny_eval
        config = counter_config()
        golden = golden_for(qm, x, config)
        full = evaluate_seed_point(qm, x, y, BER_KNEE, 0, config=config)
        parts = [
            evaluate_sample_slice(
                qm, x, y, BER_KNEE, 0,
                (start, min(start + size, N_SAMPLES)),
                config=config, golden=golden,
            )
            for start in range(0, N_SAMPLES, size)
        ]
        combined = combine_slice_results(parts)
        assert (combined.accuracy, combined.events) == (full.accuracy, full.events)

    def test_protection_thins_replay_too(self, tiny_quantized, tiny_eval):
        """Protected evaluations replay through the same golden run."""
        _, qm = tiny_quantized
        x, y = tiny_eval
        config = counter_config()
        golden = golden_for(qm, x, config)
        names = [layer.name for layer in qm.injectable_layers()]
        plan = ProtectionPlan.fault_free_layer(names[0], names)
        full = evaluate_seed_point(
            qm, x, y, BER_KNEE, 0, config=config, protection=plan
        )
        replayed = evaluate_seed_point(
            qm, x, y, BER_KNEE, 0, config=config, protection=plan, golden=golden
        )
        assert (replayed.accuracy, replayed.events) == (full.accuracy, full.events)

    def test_stream_scheme_bypasses_replay(self, tiny_quantized, tiny_eval):
        """Faulty stream-scheme points fall back to the full forward
        (stream draws are order-dependent); BER 0 still serves the cache."""
        _, qm = tiny_quantized
        x, y = tiny_eval
        config = CampaignConfig(seeds=(0,), batch_size=BATCH, max_samples=N_SAMPLES)
        golden = build_golden_run(
            qm, x[:N_SAMPLES], injector_kind=config.injector,
            fault_config=config.fault_config, batch_size=BATCH,
        )
        for ber in (0.0, BER_KNEE):
            full = evaluate_seed_point(qm, x, y, ber, 0, config=config)
            replayed = evaluate_seed_point(
                qm, x, y, ber, 0, config=config, golden=golden
            )
            assert (replayed.accuracy, replayed.events) == (
                full.accuracy, full.events,
            )

    def test_golden_check_rejects_structural_mismatch(
        self, tiny_quantized, tiny_eval
    ):
        _, qm = tiny_quantized
        x, y = tiny_eval
        config = counter_config()
        golden = golden_for(qm, x, config)
        with pytest.raises(ConfigurationError, match="injector"):
            evaluate_seed_point(
                qm, x, y, 0.0, 0,
                config=counter_config(injector="neuron"), golden=golden,
            )
        short = CampaignConfig(
            seeds=(0,), batch_size=BATCH, max_samples=N_SAMPLES - 4,
            fault_config=FaultModelConfig(rng_scheme="counter"),
        )
        with pytest.raises(ConfigurationError, match="samples"):
            evaluate_seed_point(qm, x, y, 0.0, 0, config=short, golden=golden)
        ablated = CampaignConfig(
            seeds=(0,), batch_size=BATCH, max_samples=N_SAMPLES,
            fault_config=FaultModelConfig(
                rng_scheme="counter", amplify_input_transform_adds=True
            ),
        )
        with pytest.raises(ConfigurationError, match="fault model"):
            evaluate_seed_point(qm, x, y, 0.0, 0, config=ablated, golden=golden)


class TestReplayDirtySets:
    """The executor recomputes exactly what the faults touch."""

    def test_no_events_recomputes_nothing(self, tiny_quantized, tiny_eval):
        _, qm = tiny_quantized
        x, y = tiny_eval
        config = counter_config()
        golden = golden_for(qm, x, config)
        injector = make_injector(config, BER_QUIET, 0)
        stats = ReplayStats()
        replay_forward(qm, golden, injector, (0, N_SAMPLES), stats=stats)
        assert sum(injector.event_counts.values()) == 0
        assert stats.total_recomputed == 0

    def test_saturating_ber_recomputes_every_sample(
        self, tiny_quantized, tiny_eval
    ):
        _, qm = tiny_quantized
        x, y = tiny_eval
        config = counter_config()
        golden = golden_for(qm, x, config)
        injector = make_injector(config, BER_SATURATE, 0)
        stats = ReplayStats()
        replay_forward(qm, golden, injector, (0, N_SAMPLES), stats=stats)
        assert stats.recomputed[qm.output_name] == N_SAMPLES
        assert max(stats.recomputed.values()) == N_SAMPLES

    def test_low_ber_recomputes_partial_and_growing_sets(
        self, tiny_quantized, tiny_eval
    ):
        """The dirty set is a proper subset that propagates downstream."""
        _, qm = tiny_quantized
        x, y = tiny_eval
        config = counter_config()
        golden = golden_for(qm, x, config)
        injector = make_injector(config, BER_LOW, 0)
        stats = ReplayStats()
        replay_forward(qm, golden, injector, (0, N_SAMPLES), stats=stats)
        assert sum(injector.event_counts.values()) > 0
        counts = [stats.recomputed[n.name] for n in qm.nodes if n.op != "QInput"]
        assert any(0 < c < N_SAMPLES for c in counts), counts
        # Dirty rows (outputs that actually changed) never exceed the
        # recompute set, and a sample once struck keeps its layer's
        # downstream nodes in the recompute set unless the change died.
        for name, recomputed in stats.recomputed.items():
            assert stats.dirty[name] <= recomputed

    def test_replay_window_validation(self, tiny_quantized, tiny_eval):
        _, qm = tiny_quantized
        x, y = tiny_eval
        config = counter_config()
        golden = golden_for(qm, x, config)
        injector = make_injector(config, BER_LOW, 0)
        with pytest.raises(ConfigurationError, match="out of range"):
            replay_forward(qm, golden, injector, (0, N_SAMPLES + 1))
        stream_injector = OperationLevelInjector(BER_LOW, seed=0)
        with pytest.raises(ConfigurationError, match="counter"):
            replay_forward(qm, golden, stream_injector, (0, N_SAMPLES))


class TestReplayEngine:
    """CampaignEngine(replay=True) across workers, shards and resume."""

    @pytest.mark.parametrize("shard", [None, 7])
    def test_replay_engine_matches_serial(self, tiny_quantized, tiny_eval, shard):
        _, qm = tiny_quantized
        x, y = tiny_eval
        config = counter_config()
        serial = run_point(qm, x, y, BER_KNEE, config=config)
        for workers in (1, PARITY_WORKERS):
            engine = CampaignEngine(
                workers=workers, replay=True, sample_shard=shard
            )
            result = engine.run_point(qm, x, y, BER_KNEE, config=config)
            assert result.to_dict() == serial.to_dict(), (shard, workers)

    def test_ber_zero_is_pure_lookup(self, tiny_quantized, tiny_eval):
        _, qm = tiny_quantized
        x, y = tiny_eval
        config = counter_config()
        plain = run_point(qm, x, y, 0.0, config=config)
        engine = CampaignEngine(workers=1, replay=True)
        assert engine.run_point(qm, x, y, 0.0, config=config).to_dict() == (
            plain.to_dict()
        )

    def test_one_golden_run_serves_all_plans(self, tiny_quantized, tiny_eval):
        """Planner-style candidate batches share a single clean forward."""
        _, qm = tiny_quantized
        x, y = tiny_eval
        config = counter_config()
        names = [layer.name for layer in qm.injectable_layers()]
        engine = CampaignEngine(workers=1, replay=True)
        tasks = [
            TaskSpec(
                ber=BER_KNEE,
                seeds=config.seeds,
                protection=ProtectionPlan.fault_free_layer(name, names),
            )
            for name in names
        ]
        engine_results = engine.evaluate_tasks(qm, x, y, tasks, config=config)
        assert len(engine._golden) == 1
        serial = [
            run_point(qm, x, y, BER_KNEE, config=config, protection=t.protection)
            for t in tasks
        ]
        assert [r.to_dict() for r in engine_results] == [
            r.to_dict() for r in serial
        ]

    def test_kill_mid_point_resume_with_replay_engine(
        self, tiny_quantized, tiny_eval, tmp_path
    ):
        """Slice-granular kill/resume with a cache-backed engine."""

        class StopAfter:
            def __init__(self, limit):
                self.limit, self.events = limit, 0

            def __call__(self, event):
                self.events += 1
                if self.events >= self.limit:
                    raise KeyboardInterrupt("simulated kill")

        _, qm = tiny_quantized
        x, y = tiny_eval
        config = counter_config(seeds=(0,))
        ckpt = tmp_path / "campaign.json"
        serial = run_point(qm, x, y, BER_KNEE, config=config)

        killed = CampaignEngine(
            workers=1, replay=True, sample_shard=7,
            checkpoint_path=ckpt, progress=StopAfter(2),
        )
        with pytest.raises(KeyboardInterrupt):
            killed.run_point(qm, x, y, BER_KNEE, config=config)

        resumed = CampaignEngine(
            workers=1, replay=True, sample_shard=7,
            checkpoint_path=ckpt, resume=True,
        )
        result = resumed.run_point(qm, x, y, BER_KNEE, config=config)
        assert resumed.last_stats.cached_units == 2
        assert resumed.last_stats.computed_units == 2
        assert result.to_dict() == serial.to_dict()
