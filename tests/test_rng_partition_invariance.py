"""Partition-invariance and statistics suite for the counter RNG scheme.

The acceptance gate of the sample-sharding refactor: under
``FaultModelConfig(rng_scheme="counter")`` every fault draw is a pure
function of (campaign seed, layer, site, sample chunk), so

* a (BER, seed) evaluation recombined from sample slices of *any* size —
  and through the engine with *any* worker count — is bit-identical to
  the unsliced serial run (CI tier-2 re-runs this module with
  ``REPRO_PARITY_WORKERS=2``);
* the evaluation batch size cannot change results either;
* per-chunk Poisson event totals still realize the stream scheme's
  lambda (the two schemes are the same statistical fault model);
* the legacy stream scheme is left untouched (its frozen parity refs are
  enforced by ``tests/test_engine_tasks_parity.py``) and refuses to
  sample-shard.
"""

from __future__ import annotations

import json
import os

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.faultsim import (
    CampaignConfig,
    FaultModelConfig,
    NeuronLevelInjector,
    combine_slice_results,
    evaluate_sample_slice,
    evaluate_seed_point,
    run_point,
)
from repro.runtime import CampaignEngine, TaskSpec

#: Worker count for the multi-worker regime (CI tier-2 sets this to 2).
PARITY_WORKERS = int(os.environ.get("REPRO_PARITY_WORKERS", "4"))

BER = 2e-4
N_SAMPLES = 24
BATCH = 12

#: Slice sizes the acceptance criteria pin: single sample, a size that
#: straddles chunk boundaries, the evaluation batch size, and the full set.
SLICE_SIZES = (1, 7, BATCH, N_SAMPLES)


def counter_config(seeds=(0, 1), chunk_samples=8, injector="operation"):
    return CampaignConfig(
        seeds=seeds,
        batch_size=BATCH,
        max_samples=N_SAMPLES,
        injector=injector,
        fault_config=FaultModelConfig(
            rng_scheme="counter", chunk_samples=chunk_samples
        ),
    )


def slice_bounds(size):
    return [(s, min(s + size, N_SAMPLES)) for s in range(0, N_SAMPLES, size)]


class TestSlicePartitionInvariance:
    """evaluate_sample_slice ∘ combine_slice_results == evaluate_seed_point."""

    @pytest.mark.parametrize("mode", ["standard", "winograd"])
    @pytest.mark.parametrize("size", SLICE_SIZES)
    def test_any_slice_size_recombines_bit_identically(
        self, tiny_quantized, tiny_eval, mode, size
    ):
        qm = tiny_quantized[0] if mode == "standard" else tiny_quantized[1]
        x, y = tiny_eval
        config = counter_config()
        full = evaluate_seed_point(qm, x, y, BER, 0, config=config)
        parts = [
            evaluate_sample_slice(qm, x, y, BER, 0, bounds, config=config)
            for bounds in slice_bounds(size)
        ]
        combined = combine_slice_results(parts)
        assert combined.accuracy == full.accuracy
        assert combined.events == full.events
        assert full.events > 0, "workload too quiet to exercise injection"

    @pytest.mark.parametrize("size", (1, 7))
    def test_neuron_injector_is_partition_invariant_too(
        self, tiny_quantized, tiny_eval, size
    ):
        qm, _ = tiny_quantized
        x, y = tiny_eval
        config = counter_config(injector="neuron")
        full = evaluate_seed_point(qm, x, y, BER, 0, config=config)
        combined = combine_slice_results(
            [
                evaluate_sample_slice(qm, x, y, BER, 0, bounds, config=config)
                for bounds in slice_bounds(size)
            ]
        )
        assert (combined.accuracy, combined.events) == (full.accuracy, full.events)
        assert full.events > 0

    def test_batch_size_cannot_change_counter_results(
        self, tiny_quantized, tiny_eval
    ):
        """Counter draws are keyed by global sample index and register
        widths are per-sample, so forward batching is irrelevant."""
        _, qm = tiny_quantized
        x, y = tiny_eval
        reference = evaluate_seed_point(qm, x, y, BER, 0, config=counter_config())
        for batch_size in (1, 5, N_SAMPLES):
            config = CampaignConfig(
                seeds=(0, 1),
                batch_size=batch_size,
                max_samples=N_SAMPLES,
                fault_config=FaultModelConfig(rng_scheme="counter", chunk_samples=8),
            )
            other = evaluate_seed_point(qm, x, y, BER, 0, config=config)
            assert (other.accuracy, other.events) == (
                reference.accuracy,
                reference.events,
            ), batch_size

    def test_chunk_size_is_part_of_the_draw(self, tiny_quantized, tiny_eval):
        """Different chunking = different (valid) Monte-Carlo realization."""
        qm, _ = tiny_quantized
        x, y = tiny_eval
        a = evaluate_seed_point(
            qm, x, y, BER, 0, config=counter_config(chunk_samples=8)
        )
        b = evaluate_seed_point(
            qm, x, y, BER, 0, config=counter_config(chunk_samples=3)
        )
        assert a.events != b.events or a.accuracy != b.accuracy

    def test_slice_cover_validation(self, tiny_quantized, tiny_eval):
        qm, _ = tiny_quantized
        x, y = tiny_eval
        config = counter_config()
        parts = [
            evaluate_sample_slice(qm, x, y, BER, 0, bounds, config=config)
            for bounds in ((0, 7), (14, N_SAMPLES))  # gap at [7, 14)
        ]
        with pytest.raises(ConfigurationError, match="gap"):
            combine_slice_results(parts)
        with pytest.raises(ConfigurationError, match="out of range"):
            evaluate_sample_slice(qm, x, y, BER, 0, (20, 40), config=config)
        # A contiguous-but-truncated cover is caught when the caller
        # states the expected total (as the engine does).
        head = [
            evaluate_sample_slice(qm, x, y, BER, 0, bounds, config=config)
            for bounds in ((0, 7), (7, 14))
        ]
        with pytest.raises(ConfigurationError, match="stops at"):
            combine_slice_results(head, expected_total=N_SAMPLES)

    def test_stream_scheme_refuses_sample_slices(self, tiny_quantized, tiny_eval):
        qm, _ = tiny_quantized
        x, y = tiny_eval
        config = CampaignConfig(seeds=(0,), batch_size=BATCH, max_samples=N_SAMPLES)
        with pytest.raises(ConfigurationError, match="counter"):
            evaluate_sample_slice(qm, x, y, BER, 0, (0, 7), config=config)
        # BER 0 has no injector, so slicing is legal under either scheme.
        clean = evaluate_sample_slice(qm, x, y, 0.0, 0, (0, 7), config=config)
        assert clean.total == 7 and clean.events == 0


class TestEngineSampleSharding:
    """CampaignEngine(sample_shard=...) across slice sizes and workers."""

    @pytest.mark.parametrize("shard", SLICE_SIZES)
    def test_sharded_engine_matches_serial_run_point(
        self, tiny_quantized, tiny_eval, shard
    ):
        _, qm = tiny_quantized
        x, y = tiny_eval
        config = counter_config()
        serial = run_point(qm, x, y, BER, config=config)
        for workers in (1, PARITY_WORKERS):
            engine = CampaignEngine(workers=workers, sample_shard=shard)
            result = engine.run_point(qm, x, y, BER, config=config)
            assert result.to_dict() == serial.to_dict(), (shard, workers)

    def test_shard_expands_unit_count(self, tiny_quantized, tiny_eval):
        qm, _ = tiny_quantized
        x, y = tiny_eval
        config = counter_config(seeds=(0, 1))
        engine = CampaignEngine(workers=1, sample_shard=7)
        engine.run_point(qm, x, y, BER, config=config)
        # 24 samples / 7 per slice = 4 slices per seed, 2 seeds.
        assert engine.last_stats.total_units == 2 * 4

    def test_full_set_shard_keeps_plain_point_units(
        self, tiny_quantized, tiny_eval
    ):
        """shard >= n_samples must not slice (and so shares point keys)."""
        qm, _ = tiny_quantized
        x, y = tiny_eval
        config = counter_config(seeds=(0, 1))
        engine = CampaignEngine(workers=1, sample_shard=N_SAMPLES)
        engine.run_point(qm, x, y, BER, config=config)
        assert engine.last_stats.total_units == 2

    def test_stream_scheme_sharding_rejected_by_engine(
        self, tiny_quantized, tiny_eval
    ):
        qm, _ = tiny_quantized
        x, y = tiny_eval
        engine = CampaignEngine(workers=1, sample_shard=7)
        with pytest.raises(ConfigurationError, match="counter"):
            engine.run_point(
                qm, x, y, BER,
                config=CampaignConfig(
                    seeds=(0,), batch_size=BATCH, max_samples=N_SAMPLES
                ),
            )

    def test_kill_mid_point_resume_recomputes_only_missing_slices(
        self, tiny_quantized, tiny_eval, tmp_path
    ):
        """Slice-granular checkpointing: interrupt a single (BER, seed)
        point after 2 of 4 slices, resume, recompute exactly 2."""

        class StopAfter:
            def __init__(self, limit):
                self.limit, self.events = limit, 0

            def __call__(self, event):
                self.events += 1
                if self.events >= self.limit:
                    raise KeyboardInterrupt("simulated kill")

        qm, _ = tiny_quantized
        x, y = tiny_eval
        config = counter_config(seeds=(0,))
        ckpt = tmp_path / "campaign.json"
        serial = run_point(qm, x, y, BER, config=config)

        killed = CampaignEngine(
            workers=1, sample_shard=7, checkpoint_path=ckpt, progress=StopAfter(2)
        )
        with pytest.raises(KeyboardInterrupt):
            killed.run_point(qm, x, y, BER, config=config)
        rows = [json.loads(line) for line in ckpt.read_text().splitlines()[1:]]
        assert len(rows) == 2
        assert all("correct" in row and "start" in row for row in rows)

        resumed = CampaignEngine(
            workers=1, sample_shard=7, checkpoint_path=ckpt, resume=True
        )
        result = resumed.run_point(qm, x, y, BER, config=config)
        assert resumed.last_stats.cached_units == 2
        assert resumed.last_stats.computed_units == 2
        assert result.to_dict() == serial.to_dict()

    def test_slice_keys_do_not_collide_with_point_keys(self):
        config = counter_config(seeds=(0,))
        point = TaskSpec(ber=BER, seed=0)
        slices = point.sample_subtasks(N_SAMPLES, 7)
        keys = {t.key("m", "d", config) for t in slices}
        keys.add(point.key("m", "d", config))
        assert len(keys) == len(slices) + 1

    def test_task_spec_slice_shape_validation(self):
        with pytest.raises(ConfigurationError, match="point tasks"):
            TaskSpec(ber=BER, seeds=(0, 1), sample_slice=(0, 7))
        with pytest.raises(ConfigurationError, match="start < stop"):
            TaskSpec(ber=BER, seed=0, sample_slice=(7, 7))
        with pytest.raises(ConfigurationError, match="subtasks"):
            TaskSpec(ber=BER, seeds=(0, 1)).sample_subtasks(N_SAMPLES, 7)
        sliced = TaskSpec(ber=BER, seed=0, sample_slice=(0, 7))
        assert sliced.sample_subtasks(N_SAMPLES, 3) == (sliced,)


class _FakeFmt:
    width = 8


class _FakeLayer:
    name = "stats_layer"
    out_fmt = _FakeFmt()


class TestCounterSchemeStatistics:
    """The counter scheme realizes the stream scheme's lambda."""

    NEURONS = 64
    N = 32
    RUNS = 40

    def _events(self, scheme: str) -> np.ndarray:
        """Injected event totals over RUNS independent campaigns."""
        ber = 1e-3
        layer = _FakeLayer()
        config = FaultModelConfig(rng_scheme=scheme, chunk_samples=8)
        totals = []
        for seed in range(self.RUNS):
            injector = NeuronLevelInjector(ber, seed=seed, config=config)
            injector.begin_inference(self.N)
            injector.visit_output(
                layer, np.zeros((self.N, self.NEURONS), dtype=np.int64)
            )
            totals.append(injector.event_counts["neuron"])
        return np.asarray(totals, dtype=np.float64)

    def test_chunk_poisson_totals_match_stream_lambda(self):
        """Mean/variance bounds: per-run totals under both schemes are
        Poisson(lambda) with lambda = ber * neurons * width * n."""
        lam = 1e-3 * self.NEURONS * _FakeFmt.width * self.N  # = 16.384
        counter = self._events("counter")
        stream = self._events("stream")
        sigma = np.sqrt(lam / self.RUNS)
        # Means within 4 standard errors of the analytic lambda (the
        # seeds are fixed, so this is deterministic, not flaky).
        assert abs(counter.mean() - lam) < 4 * sigma
        assert abs(stream.mean() - lam) < 4 * sigma
        # Poisson variance ~ lambda; allow a loose factor-of-two band for
        # the small sample of runs.
        assert lam / 2 < counter.var() < lam * 2

    def test_counter_partitioning_preserves_the_totals(self):
        """Splitting the same campaign into sample slices yields the same
        per-run totals (the statistics test's invariance counterpart)."""
        ber = 1e-3
        layer = _FakeLayer()
        config = FaultModelConfig(rng_scheme="counter", chunk_samples=8)
        for seed in (0, 1, 2):
            whole = NeuronLevelInjector(ber, seed=seed, config=config)
            whole.begin_inference(self.N)
            whole.visit_output(
                layer, np.zeros((self.N, self.NEURONS), dtype=np.int64)
            )
            split_total = 0
            for start in range(0, self.N, 7):
                stop = min(start + 7, self.N)
                part = NeuronLevelInjector(
                    ber, seed=seed, config=config, sample_base=start
                )
                part.begin_inference(stop - start)
                part.visit_output(
                    layer, np.zeros((stop - start, self.NEURONS), dtype=np.int64)
                )
                split_total += part.event_counts["neuron"]
            assert split_total == whole.event_counts["neuron"]
