"""Tests for the campaign execution engine: sharding, checkpoint, resume.

The engine's contract is bit-identical equivalence with the serial
:func:`repro.faultsim.run_sweep` under every execution regime — multiple
workers, checkpoint replay, partial resume — because each (BER, seed) unit
owns its RNG and the recombination reuses the serial statistics code.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.faultsim import CampaignConfig, run_sweep
from repro.runtime import (
    CampaignCheckpoint,
    CampaignEngine,
    campaign_fingerprint,
    model_fingerprint,
    point_key,
)
from repro.runtime.progress import ProgressEvent

BERS = [1e-5, 3e-5, 1e-4]


@pytest.fixture()
def config():
    return CampaignConfig(seeds=(0, 1), batch_size=12, max_samples=24)


def as_dicts(results):
    return [r.to_dict() for r in results]


class TestEngineDeterminism:
    def test_workers1_matches_serial(self, tiny_quantized, tiny_eval, config):
        qm, _ = tiny_quantized
        x, y = tiny_eval
        serial = run_sweep(qm, x, y, BERS, config=config)
        engine = CampaignEngine(workers=1)
        assert as_dicts(engine.run_sweep(qm, x, y, BERS, config=config)) == as_dicts(serial)

    def test_multiworker_bit_identical_to_serial(self, tiny_quantized, tiny_eval, config):
        qm, _ = tiny_quantized
        x, y = tiny_eval
        serial = run_sweep(qm, x, y, BERS, config=config)
        engine = CampaignEngine(workers=3)
        parallel = engine.run_sweep(qm, x, y, BERS, config=config)
        assert as_dicts(parallel) == as_dicts(serial)
        assert engine.last_stats.computed_units == len(BERS) * len(config.seeds)

    def test_zero_ber_point(self, tiny_quantized, tiny_eval, config):
        qm, _ = tiny_quantized
        x, y = tiny_eval
        serial = run_sweep(qm, x, y, [0.0, 1e-5], config=config)
        engine = CampaignEngine(workers=2)
        assert as_dicts(engine.run_sweep(qm, x, y, [0.0, 1e-5], config=config)) == as_dicts(serial)


class TestCheckpointResume:
    def test_resumed_sweep_matches_uninterrupted(
        self, tiny_quantized, tiny_eval, config, tmp_path
    ):
        """Interrupt after a prefix of the sweep, restart, compare."""
        qm, _ = tiny_quantized
        x, y = tiny_eval
        ckpt = tmp_path / "campaign.json"
        serial = run_sweep(qm, x, y, BERS, config=config)

        # "Interrupted" run: only the first two BERs complete.
        first = CampaignEngine(workers=1, checkpoint_path=ckpt)
        first.run_sweep(qm, x, y, BERS[:2], config=config)
        assert ckpt.exists()

        # Restarted engine resumes the checkpoint and finishes the sweep.
        second = CampaignEngine(workers=2, checkpoint_path=ckpt, resume=True)
        resumed = second.run_sweep(qm, x, y, BERS, config=config)
        assert as_dicts(resumed) == as_dicts(serial)
        assert second.last_stats.cached_units == 2 * len(config.seeds)
        assert second.last_stats.computed_units == 1 * len(config.seeds)

    def test_mid_point_interruption(self, tiny_quantized, tiny_eval, config, tmp_path):
        """Drop half the checkpointed units (a mid-BER crash) and resume."""
        qm, _ = tiny_quantized
        x, y = tiny_eval
        ckpt = tmp_path / "campaign.json"
        serial = run_sweep(qm, x, y, BERS, config=config)
        CampaignEngine(workers=1, checkpoint_path=ckpt).run_sweep(
            qm, x, y, BERS, config=config
        )

        doc = json.loads(ckpt.read_text())
        keys = sorted(doc["points"])
        for key in keys[: len(keys) // 2]:
            del doc["points"][key]
        ckpt.write_text(json.dumps(doc))

        engine = CampaignEngine(workers=2, checkpoint_path=ckpt, resume=True)
        resumed = engine.run_sweep(qm, x, y, BERS, config=config)
        assert as_dicts(resumed) == as_dicts(serial)
        assert engine.last_stats.computed_units == len(keys) // 2

    def test_resume_false_recomputes(self, tiny_quantized, tiny_eval, config, tmp_path):
        qm, _ = tiny_quantized
        x, y = tiny_eval
        ckpt = tmp_path / "campaign.json"
        CampaignEngine(workers=1, checkpoint_path=ckpt).run_sweep(
            qm, x, y, BERS[:1], config=config
        )
        engine = CampaignEngine(workers=1, checkpoint_path=ckpt, resume=False)
        engine.run_sweep(qm, x, y, BERS[:1], config=config)
        assert engine.last_stats.computed_units == len(config.seeds)
        assert engine.last_stats.cached_units == 0

    def test_resume_false_preserves_other_sweeps_points(
        self, tiny_quantized, tiny_eval, config, tmp_path
    ):
        """A non-resume run must merge into the file, not truncate it."""
        qm, _ = tiny_quantized
        x, y = tiny_eval
        ckpt = tmp_path / "campaign.json"
        CampaignEngine(workers=1, checkpoint_path=ckpt).run_sweep(
            qm, x, y, BERS[:1], config=config
        )
        CampaignEngine(workers=1, checkpoint_path=ckpt, resume=False).run_sweep(
            qm, x, y, BERS[1:2], config=config
        )
        doc = json.loads(ckpt.read_text())
        assert len(doc["points"]) == 2 * len(config.seeds)
        engine = CampaignEngine(workers=1, checkpoint_path=ckpt, resume=True)
        resumed = engine.run_sweep(qm, x, y, BERS[:2], config=config)
        assert engine.last_stats.cached_units == 2 * len(config.seeds)
        assert as_dicts(resumed) == as_dicts(run_sweep(qm, x, y, BERS[:2], config=config))

    def test_checkpoint_keyed_on_eval_data(
        self, tiny_quantized, tiny_eval, config, tmp_path
    ):
        """Different evaluation data must never be served cached points."""
        qm, _ = tiny_quantized
        x, y = tiny_eval
        ckpt = tmp_path / "campaign.json"
        CampaignEngine(workers=1, checkpoint_path=ckpt).run_sweep(
            qm, x, y, BERS[:1], config=config
        )
        shifted_x, shifted_y = x[1:], y[1:]
        engine = CampaignEngine(workers=1, checkpoint_path=ckpt, resume=True)
        shifted = engine.run_sweep(qm, shifted_x, shifted_y, BERS[:1], config=config)
        assert engine.last_stats.cached_units == 0
        assert as_dicts(shifted) == as_dicts(
            run_sweep(qm, shifted_x, shifted_y, BERS[:1], config=config)
        )

    def test_checkpoint_not_shared_across_models(
        self, tiny_quantized, tiny_eval, config, tmp_path
    ):
        """Standard and Winograd models must not collide in one file."""
        qm_st, qm_wg = tiny_quantized
        x, y = tiny_eval
        ckpt = tmp_path / "campaign.json"
        CampaignEngine(workers=1, checkpoint_path=ckpt).run_sweep(
            qm_st, x, y, BERS[:1], config=config
        )
        engine = CampaignEngine(workers=1, checkpoint_path=ckpt, resume=True)
        wg = engine.run_sweep(qm_wg, x, y, BERS[:1], config=config)
        assert engine.last_stats.cached_units == 0
        assert as_dicts(wg) == as_dicts(run_sweep(qm_wg, x, y, BERS[:1], config=config))

    def test_checkpoint_file_format(self, tiny_quantized, tiny_eval, config, tmp_path):
        qm, _ = tiny_quantized
        x, y = tiny_eval
        ckpt = tmp_path / "campaign.json"
        CampaignEngine(workers=1, checkpoint_path=ckpt).run_sweep(
            qm, x, y, BERS[:1], config=config
        )
        doc = json.loads(ckpt.read_text())
        assert doc["version"] == 1
        assert len(doc["points"]) == len(config.seeds)
        for row in doc["points"].values():
            assert set(row) == {"ber", "seed", "accuracy", "events"}


class TestHashing:
    def test_point_keys_stable_and_distinct(self, tiny_quantized, tiny_eval, config):
        from repro.runtime import data_fingerprint

        qm_st, qm_wg = tiny_quantized
        x, y = tiny_eval
        model_fp = model_fingerprint(qm_st)
        camp_fp = campaign_fingerprint(config)
        data_fp = data_fingerprint(x, y)
        assert model_fp == model_fingerprint(qm_st)
        assert model_fp != model_fingerprint(qm_wg)
        assert data_fp == data_fingerprint(x, y)
        assert data_fp != data_fingerprint(x[:-1], y[:-1])
        base = point_key(model_fp, camp_fp, data_fp, 1e-5, 0)
        assert base == point_key(model_fp, camp_fp, data_fp, 1e-5, 0)
        assert base != point_key(model_fp, camp_fp, data_fp, 1e-5, 1)
        assert base != point_key(model_fp, camp_fp, data_fp, 3e-5, 0)

    def test_model_fingerprint_tracks_activation_formats(self, tiny_quantized):
        """Recalibration can shift node formats without touching weights;
        the fingerprint must see that."""
        from repro.fixedpoint import QFormat

        qm, _ = tiny_quantized
        node = qm.injectable_layers()[0]
        original = node.out_fmt
        before = model_fingerprint(qm)
        try:
            node.out_fmt = QFormat(original.width, original.frac + 1)
            assert model_fingerprint(qm) != before
        finally:
            node.out_fmt = original
        assert model_fingerprint(qm) == before

    def test_campaign_fingerprint_ignores_seeds(self, config):
        more_seeds = CampaignConfig(
            seeds=(0, 1, 2, 3),
            batch_size=config.batch_size,
            max_samples=config.max_samples,
        )
        assert campaign_fingerprint(config) == campaign_fingerprint(more_seeds)

    def test_campaign_fingerprint_tracks_budget(self, config):
        other = CampaignConfig(
            seeds=config.seeds, batch_size=config.batch_size, max_samples=12
        )
        assert campaign_fingerprint(config) != campaign_fingerprint(other)


class TestProgressAndCheckpointStore:
    def test_progress_events_stream(self, tiny_quantized, tiny_eval, config):
        qm, _ = tiny_quantized
        x, y = tiny_eval
        events: list[ProgressEvent] = []
        engine = CampaignEngine(workers=2, progress=events.append)
        engine.run_sweep(qm, x, y, BERS[:2], config=config)
        total = 2 * len(config.seeds)
        assert len(events) == total
        assert events[-1].done == total and events[-1].total == total
        assert not any(e.cached for e in events)

    def test_cached_units_reported_as_cached(
        self, tiny_quantized, tiny_eval, config, tmp_path
    ):
        qm, _ = tiny_quantized
        x, y = tiny_eval
        ckpt = tmp_path / "campaign.json"
        CampaignEngine(workers=1, checkpoint_path=ckpt).run_sweep(
            qm, x, y, BERS[:1], config=config
        )
        events: list[ProgressEvent] = []
        engine = CampaignEngine(
            workers=1, checkpoint_path=ckpt, resume=True, progress=events.append
        )
        engine.run_sweep(qm, x, y, BERS[:1], config=config)
        assert all(e.cached for e in events)

    def test_store_roundtrip(self, tmp_path):
        from repro.faultsim import SeedPointResult

        path = tmp_path / "ck.json"
        store = CampaignCheckpoint(path)
        result = SeedPointResult(ber=1e-5, seed=3, accuracy=0.5, events=7)
        store.put("abc", result)
        reloaded = CampaignCheckpoint(path)
        assert reloaded.get("abc") == result
        assert "abc" in reloaded and len(reloaded) == 1

    def test_store_merges_never_truncates(self, tmp_path):
        from repro.faultsim import SeedPointResult

        path = tmp_path / "ck.json"
        first = CampaignCheckpoint(path)
        first.put("aaa", SeedPointResult(ber=1e-5, seed=0, accuracy=0.5, events=1))
        second = CampaignCheckpoint(path)
        second.put("bbb", SeedPointResult(ber=3e-5, seed=1, accuracy=0.25, events=2))
        merged = CampaignCheckpoint(path)
        assert "aaa" in merged and "bbb" in merged and len(merged) == 2

    def test_store_interleaved_writers_keep_both_points(self, tmp_path):
        """Two stores opened concurrently must not erase each other's work
        (flush re-reads the file and merges before rewriting)."""
        from repro.faultsim import SeedPointResult

        path = tmp_path / "ck.json"
        a = CampaignCheckpoint(path)
        b = CampaignCheckpoint(path)  # opened before a writes anything
        a.put("aaa", SeedPointResult(ber=1e-5, seed=0, accuracy=0.5, events=1))
        b.put("bbb", SeedPointResult(ber=3e-5, seed=1, accuracy=0.25, events=2))
        merged = CampaignCheckpoint(path)
        assert "aaa" in merged and "bbb" in merged and len(merged) == 2

    def test_store_clean_flush_is_noop(self, tmp_path):
        path = tmp_path / "ck.json"
        store = CampaignCheckpoint(path)
        store.flush()
        assert not path.exists()

    def test_store_rejects_unknown_version(self, tmp_path):
        from repro.errors import ConfigurationError

        path = tmp_path / "ck.json"
        path.write_text(json.dumps({"version": 99, "points": {}}))
        with pytest.raises(ConfigurationError):
            CampaignCheckpoint(path)

    def test_store_rejects_corrupt_json(self, tmp_path):
        from repro.errors import ConfigurationError

        path = tmp_path / "ck.json"
        path.write_text("{garbage")
        with pytest.raises(ConfigurationError, match="not valid JSON"):
            CampaignCheckpoint(path)
