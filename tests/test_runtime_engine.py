"""Tests for the campaign execution engine: sharding, checkpoint, resume.

The engine's contract is bit-identical equivalence with the serial
:func:`repro.faultsim.run_sweep` under every execution regime — multiple
workers, checkpoint replay, partial resume — because each task unit owns
its RNG and the recombination reuses the serial statistics code.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.faultsim import CampaignConfig, ProtectionPlan, run_sweep
from repro.runtime import (
    CampaignCheckpoint,
    CampaignEngine,
    campaign_fingerprint,
    model_fingerprint,
    point_key,
    task_key,
)
from repro.runtime.checkpoint import record_crc
from repro.runtime.progress import ProgressEvent

BERS = [1e-5, 3e-5, 1e-4]


@pytest.fixture()
def config():
    return CampaignConfig(seeds=(0, 1), batch_size=12, max_samples=24)


def as_dicts(results):
    return [r.to_dict() for r in results]


def checkpoint_lines(path):
    """(header dict, point-record lines) of a JSON-lines checkpoint file."""
    lines = path.read_text().splitlines()
    return json.loads(lines[0]), lines[1:]


def checkpoint_points(path):
    """key -> record dict for every intact line of a checkpoint file."""
    _, rows = checkpoint_lines(path)
    points = {}
    for line in rows:
        row = json.loads(line)
        points[row.pop("key")] = row
    return points


class TestEngineDeterminism:
    def test_workers1_matches_serial(self, tiny_quantized, tiny_eval, config):
        qm, _ = tiny_quantized
        x, y = tiny_eval
        serial = run_sweep(qm, x, y, BERS, config=config)
        engine = CampaignEngine(workers=1)
        assert as_dicts(engine.run_sweep(qm, x, y, BERS, config=config)) == as_dicts(serial)

    def test_multiworker_bit_identical_to_serial(self, tiny_quantized, tiny_eval, config):
        qm, _ = tiny_quantized
        x, y = tiny_eval
        serial = run_sweep(qm, x, y, BERS, config=config)
        engine = CampaignEngine(workers=3)
        parallel = engine.run_sweep(qm, x, y, BERS, config=config)
        assert as_dicts(parallel) == as_dicts(serial)
        assert engine.last_stats.computed_units == len(BERS) * len(config.seeds)

    def test_zero_ber_point(self, tiny_quantized, tiny_eval, config):
        qm, _ = tiny_quantized
        x, y = tiny_eval
        serial = run_sweep(qm, x, y, [0.0, 1e-5], config=config)
        engine = CampaignEngine(workers=2)
        assert as_dicts(engine.run_sweep(qm, x, y, [0.0, 1e-5], config=config)) == as_dicts(serial)


class TestCheckpointResume:
    def test_resumed_sweep_matches_uninterrupted(
        self, tiny_quantized, tiny_eval, config, tmp_path
    ):
        """Interrupt after a prefix of the sweep, restart, compare."""
        qm, _ = tiny_quantized
        x, y = tiny_eval
        ckpt = tmp_path / "campaign.json"
        serial = run_sweep(qm, x, y, BERS, config=config)

        # "Interrupted" run: only the first two BERs complete.
        first = CampaignEngine(workers=1, checkpoint_path=ckpt)
        first.run_sweep(qm, x, y, BERS[:2], config=config)
        assert ckpt.exists()

        # Restarted engine resumes the checkpoint and finishes the sweep.
        second = CampaignEngine(workers=2, checkpoint_path=ckpt, resume=True)
        resumed = second.run_sweep(qm, x, y, BERS, config=config)
        assert as_dicts(resumed) == as_dicts(serial)
        assert second.last_stats.cached_units == 2 * len(config.seeds)
        assert second.last_stats.computed_units == 1 * len(config.seeds)

    def test_mid_point_interruption(self, tiny_quantized, tiny_eval, config, tmp_path):
        """Drop half the checkpointed units (a mid-BER crash) and resume."""
        qm, _ = tiny_quantized
        x, y = tiny_eval
        ckpt = tmp_path / "campaign.json"
        serial = run_sweep(qm, x, y, BERS, config=config)
        CampaignEngine(workers=1, checkpoint_path=ckpt).run_sweep(
            qm, x, y, BERS, config=config
        )

        header, rows = checkpoint_lines(ckpt)
        dropped = len(rows) // 2
        kept = rows[dropped:]
        ckpt.write_text("\n".join([json.dumps(header)] + kept) + "\n")

        engine = CampaignEngine(workers=2, checkpoint_path=ckpt, resume=True)
        resumed = engine.run_sweep(qm, x, y, BERS, config=config)
        assert as_dicts(resumed) == as_dicts(serial)
        assert engine.last_stats.computed_units == dropped

    def test_resume_false_recomputes(self, tiny_quantized, tiny_eval, config, tmp_path):
        qm, _ = tiny_quantized
        x, y = tiny_eval
        ckpt = tmp_path / "campaign.json"
        CampaignEngine(workers=1, checkpoint_path=ckpt).run_sweep(
            qm, x, y, BERS[:1], config=config
        )
        engine = CampaignEngine(workers=1, checkpoint_path=ckpt, resume=False)
        engine.run_sweep(qm, x, y, BERS[:1], config=config)
        assert engine.last_stats.computed_units == len(config.seeds)
        assert engine.last_stats.cached_units == 0

    def test_resume_false_preserves_other_sweeps_points(
        self, tiny_quantized, tiny_eval, config, tmp_path
    ):
        """A non-resume run must merge into the file, not truncate it."""
        qm, _ = tiny_quantized
        x, y = tiny_eval
        ckpt = tmp_path / "campaign.json"
        CampaignEngine(workers=1, checkpoint_path=ckpt).run_sweep(
            qm, x, y, BERS[:1], config=config
        )
        CampaignEngine(workers=1, checkpoint_path=ckpt, resume=False).run_sweep(
            qm, x, y, BERS[1:2], config=config
        )
        assert len(checkpoint_points(ckpt)) == 2 * len(config.seeds)
        engine = CampaignEngine(workers=1, checkpoint_path=ckpt, resume=True)
        resumed = engine.run_sweep(qm, x, y, BERS[:2], config=config)
        assert engine.last_stats.cached_units == 2 * len(config.seeds)
        assert as_dicts(resumed) == as_dicts(run_sweep(qm, x, y, BERS[:2], config=config))

    def test_checkpoint_keyed_on_eval_data(
        self, tiny_quantized, tiny_eval, config, tmp_path
    ):
        """Different evaluation data must never be served cached points."""
        qm, _ = tiny_quantized
        x, y = tiny_eval
        ckpt = tmp_path / "campaign.json"
        CampaignEngine(workers=1, checkpoint_path=ckpt).run_sweep(
            qm, x, y, BERS[:1], config=config
        )
        shifted_x, shifted_y = x[1:], y[1:]
        engine = CampaignEngine(workers=1, checkpoint_path=ckpt, resume=True)
        shifted = engine.run_sweep(qm, shifted_x, shifted_y, BERS[:1], config=config)
        assert engine.last_stats.cached_units == 0
        assert as_dicts(shifted) == as_dicts(
            run_sweep(qm, shifted_x, shifted_y, BERS[:1], config=config)
        )

    def test_checkpoint_not_shared_across_models(
        self, tiny_quantized, tiny_eval, config, tmp_path
    ):
        """Standard and Winograd models must not collide in one file."""
        qm_st, qm_wg = tiny_quantized
        x, y = tiny_eval
        ckpt = tmp_path / "campaign.json"
        CampaignEngine(workers=1, checkpoint_path=ckpt).run_sweep(
            qm_st, x, y, BERS[:1], config=config
        )
        engine = CampaignEngine(workers=1, checkpoint_path=ckpt, resume=True)
        wg = engine.run_sweep(qm_wg, x, y, BERS[:1], config=config)
        assert engine.last_stats.cached_units == 0
        assert as_dicts(wg) == as_dicts(run_sweep(qm_wg, x, y, BERS[:1], config=config))

    def test_checkpoint_file_format(self, tiny_quantized, tiny_eval, config, tmp_path):
        qm, _ = tiny_quantized
        x, y = tiny_eval
        ckpt = tmp_path / "campaign.json"
        CampaignEngine(workers=1, checkpoint_path=ckpt).run_sweep(
            qm, x, y, BERS[:1], config=config
        )
        header, rows = checkpoint_lines(ckpt)
        assert header == {"version": 3}
        assert len(rows) == len(config.seeds)
        for line in rows:
            row = json.loads(line)
            assert set(row) == {"key", "ber", "seed", "accuracy", "events", "crc"}
            assert row["crc"] == record_crc(row)

    def test_legacy_v1_checkpoint_still_loads(
        self, tiny_quantized, tiny_eval, config, tmp_path
    ):
        """A version-1 single-document file is read and upgraded on flush."""
        from repro.faultsim import SeedPointResult

        qm, _ = tiny_quantized
        x, y = tiny_eval
        ckpt = tmp_path / "campaign.json"
        engine = CampaignEngine(workers=1, checkpoint_path=ckpt)
        engine.run_sweep(qm, x, y, BERS[:1], config=config)
        points = checkpoint_points(ckpt)

        # Rewrite the same content in the legacy format.
        ckpt.write_text(json.dumps({"version": 1, "points": points}, indent=2))
        resumed = CampaignEngine(workers=1, checkpoint_path=ckpt, resume=True)
        resumed.run_sweep(qm, x, y, BERS[:2], config=config)
        assert resumed.last_stats.cached_units == len(config.seeds)
        # The flush upgraded the file to version 3 with all points intact.
        header, rows = checkpoint_lines(ckpt)
        assert header == {"version": 3}
        assert len(rows) == 2 * len(config.seeds)
        store = CampaignCheckpoint(ckpt)
        for key, row in points.items():
            assert store.get(key) == SeedPointResult.from_dict(row)


class TestHashing:
    def test_point_keys_stable_and_distinct(self, tiny_quantized, tiny_eval, config):
        from repro.runtime import data_fingerprint

        qm_st, qm_wg = tiny_quantized
        x, y = tiny_eval
        model_fp = model_fingerprint(qm_st)
        camp_fp = campaign_fingerprint(config)
        data_fp = data_fingerprint(x, y)
        assert model_fp == model_fingerprint(qm_st)
        assert model_fp != model_fingerprint(qm_wg)
        assert data_fp == data_fingerprint(x, y)
        assert data_fp != data_fingerprint(x[:-1], y[:-1])
        base = point_key(model_fp, camp_fp, data_fp, 1e-5, 0)
        assert base == point_key(model_fp, camp_fp, data_fp, 1e-5, 0)
        assert base != point_key(model_fp, camp_fp, data_fp, 1e-5, 1)
        assert base != point_key(model_fp, camp_fp, data_fp, 3e-5, 0)

    def test_model_fingerprint_tracks_activation_formats(self, tiny_quantized):
        """Recalibration can shift node formats without touching weights;
        the fingerprint must see that."""
        from repro.fixedpoint import QFormat

        qm, _ = tiny_quantized
        node = qm.injectable_layers()[0]
        original = node.out_fmt
        before = model_fingerprint(qm)
        try:
            node.out_fmt = QFormat(original.width, original.frac + 1)
            assert model_fingerprint(qm) != before
        finally:
            node.out_fmt = original
        assert model_fingerprint(qm) == before

    def test_campaign_fingerprint_ignores_seeds(self, config):
        more_seeds = CampaignConfig(
            seeds=(0, 1, 2, 3),
            batch_size=config.batch_size,
            max_samples=config.max_samples,
        )
        assert campaign_fingerprint(config) == campaign_fingerprint(more_seeds)

    def test_campaign_fingerprint_tracks_budget(self, config):
        other = CampaignConfig(
            seeds=config.seeds, batch_size=config.batch_size, max_samples=12
        )
        assert campaign_fingerprint(config) != campaign_fingerprint(other)


class TestProgressAndCheckpointStore:
    def test_progress_events_stream(self, tiny_quantized, tiny_eval, config):
        qm, _ = tiny_quantized
        x, y = tiny_eval
        events: list[ProgressEvent] = []
        engine = CampaignEngine(workers=2, progress=events.append)
        engine.run_sweep(qm, x, y, BERS[:2], config=config)
        total = 2 * len(config.seeds)
        assert len(events) == total
        assert events[-1].done == total and events[-1].total == total
        assert not any(e.cached for e in events)

    def test_cached_units_reported_as_cached(
        self, tiny_quantized, tiny_eval, config, tmp_path
    ):
        qm, _ = tiny_quantized
        x, y = tiny_eval
        ckpt = tmp_path / "campaign.json"
        CampaignEngine(workers=1, checkpoint_path=ckpt).run_sweep(
            qm, x, y, BERS[:1], config=config
        )
        events: list[ProgressEvent] = []
        engine = CampaignEngine(
            workers=1, checkpoint_path=ckpt, resume=True, progress=events.append
        )
        engine.run_sweep(qm, x, y, BERS[:1], config=config)
        assert all(e.cached for e in events)

    def test_store_roundtrip(self, tmp_path):
        from repro.faultsim import SeedPointResult

        path = tmp_path / "ck.json"
        store = CampaignCheckpoint(path)
        result = SeedPointResult(ber=1e-5, seed=3, accuracy=0.5, events=7)
        store.put("abc", result)
        reloaded = CampaignCheckpoint(path)
        assert reloaded.get("abc") == result
        assert "abc" in reloaded and len(reloaded) == 1

    def test_store_merges_never_truncates(self, tmp_path):
        from repro.faultsim import SeedPointResult

        path = tmp_path / "ck.json"
        first = CampaignCheckpoint(path)
        first.put("aaa", SeedPointResult(ber=1e-5, seed=0, accuracy=0.5, events=1))
        second = CampaignCheckpoint(path)
        second.put("bbb", SeedPointResult(ber=3e-5, seed=1, accuracy=0.25, events=2))
        merged = CampaignCheckpoint(path)
        assert "aaa" in merged and "bbb" in merged and len(merged) == 2

    def test_store_interleaved_writers_keep_both_points(self, tmp_path):
        """Two stores opened concurrently must not erase each other's work
        (flush re-reads the file and merges before rewriting)."""
        from repro.faultsim import SeedPointResult

        path = tmp_path / "ck.json"
        a = CampaignCheckpoint(path)
        b = CampaignCheckpoint(path)  # opened before a writes anything
        a.put("aaa", SeedPointResult(ber=1e-5, seed=0, accuracy=0.5, events=1))
        b.put("bbb", SeedPointResult(ber=3e-5, seed=1, accuracy=0.25, events=2))
        merged = CampaignCheckpoint(path)
        assert "aaa" in merged and "bbb" in merged and len(merged) == 2

    def test_store_clean_flush_is_noop(self, tmp_path):
        path = tmp_path / "ck.json"
        store = CampaignCheckpoint(path)
        store.flush()
        assert not path.exists()

    @pytest.mark.parametrize("content", ["", "\n\n"], ids=["empty", "whitespace"])
    def test_store_empty_file_is_fresh(self, tmp_path, content):
        """A zero-byte (touch-created, or crash-before-header) checkpoint
        loads as a fresh store — not a CheckpointError — and the first
        flush rewrites it with a proper v3 header."""
        from repro.faultsim import SeedPointResult

        path = tmp_path / "ck.json"
        path.write_text(content)
        store = CampaignCheckpoint(path)
        assert len(store) == 0 and store.damaged_lines == []
        store.put("abc", SeedPointResult(ber=1e-5, seed=3, accuracy=0.5, events=7))
        store.flush()
        lines = path.read_text().splitlines()
        assert json.loads(lines[0]) == {"version": 3}
        reloaded = CampaignCheckpoint(path, strict=True)
        assert reloaded.get("abc") == SeedPointResult(
            ber=1e-5, seed=3, accuracy=0.5, events=7
        )

    def test_store_rejects_unknown_version(self, tmp_path):
        from repro.errors import CheckpointError

        path = tmp_path / "ck.json"
        path.write_text('{"version": 99}\n')
        with pytest.raises(CheckpointError, match="unsupported version"):
            CampaignCheckpoint(path)
        # Legacy-style documents with a bad version are refused too.
        path.write_text(json.dumps({"version": 99, "points": {}}, indent=2))
        with pytest.raises(CheckpointError, match="unsupported version"):
            CampaignCheckpoint(path)

    def test_store_rejects_corrupt_header(self, tmp_path):
        """A file with no readable header raises CheckpointError — never a
        raw JSONDecodeError — and CheckpointError is a ConfigurationError,
        so existing guards keep working."""
        from repro.errors import CheckpointError, ConfigurationError

        path = tmp_path / "ck.json"
        path.write_text("{garbage")
        with pytest.raises(CheckpointError, match="not valid JSON"):
            CampaignCheckpoint(path)
        assert issubclass(CheckpointError, ConfigurationError)
        assert not issubclass(CheckpointError, json.JSONDecodeError)


class TestCheckpointDedupe:
    """``put`` must not append rows for already-persisted identical results.

    Adaptive drivers re-submit settled units every round (the engine
    consults the checkpoint per batch), so without dedupe a long adaptive
    run would grow the file linearly with *rounds*, not with work.
    """

    def _result(self, accuracy=0.5):
        from repro.faultsim import SeedPointResult

        return SeedPointResult(ber=1e-5, seed=3, accuracy=accuracy, events=7)

    def test_identical_reput_appends_nothing(self, tmp_path):
        path = tmp_path / "ck.json"
        store = CampaignCheckpoint(path)
        store.put("abc", self._result())
        assert len(path.read_text().splitlines()) == 2  # header + 1 row
        for _ in range(3):
            store.put("abc", self._result())
            store.flush()
        assert len(path.read_text().splitlines()) == 2

    def test_identical_reput_after_reopen_appends_nothing(self, tmp_path):
        path = tmp_path / "ck.json"
        CampaignCheckpoint(path).put("abc", self._result())
        reopened = CampaignCheckpoint(path)
        reopened.put("abc", self._result())
        reopened.flush()
        assert len(path.read_text().splitlines()) == 2

    def test_changed_result_still_appends_last_wins(self, tmp_path):
        path = tmp_path / "ck.json"
        store = CampaignCheckpoint(path)
        store.put("abc", self._result(accuracy=0.5))
        store.put("abc", self._result(accuracy=0.75))
        assert len(path.read_text().splitlines()) == 3
        assert CampaignCheckpoint(path).get("abc") == self._result(accuracy=0.75)

    def test_compact_keeps_one_last_wins_row_per_key(self, tmp_path):
        path = tmp_path / "ck.json"
        store = CampaignCheckpoint(path)
        store.put("abc", self._result(accuracy=0.5))
        store.put("abc", self._result(accuracy=0.75))
        store.put("xyz", self._result(accuracy=0.25))
        assert len(path.read_text().splitlines()) == 4
        store.compact()
        lines = path.read_text().splitlines()
        assert len(lines) == 3
        assert json.loads(lines[0]) == {"version": 3}
        rows = {json.loads(line)["key"] for line in lines[1:]}
        assert rows == {"abc", "xyz"}
        reloaded = CampaignCheckpoint(path, strict=True)
        assert reloaded.get("abc") == self._result(accuracy=0.75)
        assert reloaded.get("xyz") == self._result(accuracy=0.25)

    def test_compact_preserves_rows_from_other_writers(self, tmp_path):
        path = tmp_path / "ck.json"
        mine = CampaignCheckpoint(path)
        mine.put("aaa", self._result(accuracy=0.5))
        other = CampaignCheckpoint(path)
        other.put("bbb", self._result(accuracy=0.25))
        mine.compact()  # must merge-under, not truncate to its own view
        merged = CampaignCheckpoint(path)
        assert "aaa" in merged and "bbb" in merged and len(merged) == 2

    def test_compact_repairs_damaged_lines(self, tmp_path):
        path = tmp_path / "ck.json"
        store = CampaignCheckpoint(path)
        store.put("abc", self._result())
        store.put("xyz", self._result(accuracy=0.25))
        lines = path.read_text().splitlines()
        lines[1] = lines[1][: len(lines[1]) // 2]  # crash mid-write
        path.write_text("\n".join(lines) + "\n")
        with pytest.warns(RuntimeWarning, match="damaged line"):
            salvaged = CampaignCheckpoint(path)
        assert salvaged.damaged_lines == [2] and len(salvaged) == 1
        salvaged.compact()
        assert salvaged.damaged_lines == []
        clean = CampaignCheckpoint(path, strict=True)
        assert "xyz" in clean and len(clean) == 1


class TestCheckpointRobustness:
    """Damaged checkpoint lines: clean error, salvage, minimal recompute."""

    def _damage_first_point_line(self, ckpt):
        """Truncate the first point record mid-line (a crash mid-write)."""
        lines = ckpt.read_text().splitlines()
        damaged_row = json.loads(lines[1])
        lines[1] = lines[1][: len(lines[1]) // 2]
        ckpt.write_text("\n".join(lines) + "\n")
        return damaged_row

    def test_strict_load_raises_clean_checkpoint_error(
        self, tiny_quantized, tiny_eval, config, tmp_path
    ):
        from repro.errors import CheckpointError

        qm, _ = tiny_quantized
        x, y = tiny_eval
        ckpt = tmp_path / "campaign.json"
        CampaignEngine(workers=1, checkpoint_path=ckpt).run_sweep(
            qm, x, y, BERS[:1], config=config
        )
        self._damage_first_point_line(ckpt)
        with pytest.raises(CheckpointError, match="damaged line"):
            CampaignCheckpoint(ckpt, strict=True)

    def test_salvage_reports_damaged_lines(
        self, tiny_quantized, tiny_eval, config, tmp_path
    ):
        qm, _ = tiny_quantized
        x, y = tiny_eval
        ckpt = tmp_path / "campaign.json"
        CampaignEngine(workers=1, checkpoint_path=ckpt).run_sweep(
            qm, x, y, BERS[:1], config=config
        )
        intact = len(checkpoint_points(ckpt))
        self._damage_first_point_line(ckpt)
        with pytest.warns(RuntimeWarning, match="damaged line"):
            store = CampaignCheckpoint(ckpt)
        assert store.damaged_lines == [2]
        assert len(store) == intact - 1

    def test_resume_recomputes_only_damaged_entries(
        self, tiny_quantized, tiny_eval, config, tmp_path
    ):
        """--resume over a truncated checkpoint replays every intact entry
        and recomputes exactly the damaged ones, bit-identical."""
        qm, _ = tiny_quantized
        x, y = tiny_eval
        ckpt = tmp_path / "campaign.json"
        serial = run_sweep(qm, x, y, BERS, config=config)
        CampaignEngine(workers=1, checkpoint_path=ckpt).run_sweep(
            qm, x, y, BERS, config=config
        )
        total = len(BERS) * len(config.seeds)
        self._damage_first_point_line(ckpt)

        engine = CampaignEngine(workers=2, checkpoint_path=ckpt, resume=True)
        with pytest.warns(RuntimeWarning, match="damaged line"):
            resumed = engine.run_sweep(qm, x, y, BERS, config=config)
        assert as_dicts(resumed) == as_dicts(serial)
        assert engine.last_stats.computed_units == 1
        assert engine.last_stats.cached_units == total - 1
        # The flush compacted the file: reloading sees no damage.
        store = CampaignCheckpoint(ckpt, strict=True)
        assert store.damaged_lines == [] and len(store) == total


class TestProtectionPlanTaskHashing:
    """Property-style tests for task keys over ProtectionPlan contents."""

    LAYERS = ("c1", "c2", "fc", "conv_a", "conv_b")

    def _random_fractions(self, rng):
        from repro.winograd.opcount import ALL_CATEGORIES

        pairs = [(layer, cat) for layer in self.LAYERS for cat in ALL_CATEGORIES]
        chosen = rng.choice(len(pairs), size=rng.integers(1, 9), replace=False)
        return {
            pairs[i]: float(np.round(rng.uniform(0.05, 1.0), 3)) for i in chosen
        }

    def _key(self, plan, ber=1e-5, seed=0):
        config = CampaignConfig(seeds=(0, 1))
        return task_key("model-fp", "data-fp", config, ber, seed, plan)

    def test_insertion_order_never_changes_key(self):
        rng = np.random.default_rng(20260729)
        for _ in range(25):
            fractions = self._random_fractions(rng)
            items = list(fractions.items())
            forward, shuffled = ProtectionPlan(), ProtectionPlan()
            for (layer, cat), frac in items:
                forward.set(layer, cat, frac)
            for i in rng.permutation(len(items)):
                (layer, cat), frac = items[i]
                shuffled.set(layer, cat, frac)
            assert forward.cache_key() == shuffled.cache_key()
            assert self._key(forward) == self._key(shuffled)

    def test_any_fraction_change_changes_key(self):
        rng = np.random.default_rng(7)
        for _ in range(25):
            fractions = self._random_fractions(rng)
            plan = ProtectionPlan()
            for (layer, cat), frac in fractions.items():
                plan.set(layer, cat, frac)
            base = self._key(plan)
            for (layer, cat), frac in fractions.items():
                changed = plan.copy()
                delta = 0.5 * frac if frac > 0.1 else frac + 0.1
                changed.set(layer, cat, float(np.round(delta, 3)))
                assert self._key(changed) != base, (layer, cat)

    def test_zero_fractions_equal_absent_entries(self):
        """Explicit 0.0 entries are canonicalized away: same key as a plan
        that never mentions the pair."""
        sparse = ProtectionPlan()
        sparse.set("c1", "st_mul", 0.5)
        padded = sparse.copy()
        padded.set("c2", "st_add", 0.0)
        padded.set("fc", "wg_mul", 0.0)
        assert self._key(sparse) == self._key(padded)

    def test_task_spec_key_matches_task_key(self):
        from repro.runtime import TaskSpec

        plan = ProtectionPlan()
        plan.set("c1", "st_mul", 0.25)
        config = CampaignConfig(seeds=(0,))
        spec = TaskSpec(ber=3e-5, seed=4, protection=plan, tag="anything")
        assert spec.key("m", "d", config) == task_key("m", "d", config, 3e-5, 4, plan)
        # The tag is a label, not identity.
        retagged = TaskSpec(ber=3e-5, seed=4, protection=plan, tag="other")
        assert retagged.key("m", "d", config) == spec.key("m", "d", config)
