"""Tests for intra-task seed sharding: seed-batch tasks and subtask resume.

A seed-batch :class:`TaskSpec` (``seeds=``) shards into per-seed subtasks
inside :meth:`CampaignEngine.evaluate_tasks`; the checkpoint is keyed at
subtask granularity, so interrupting a batch mid-way ("kill mid-batch")
and resuming must recompute exactly the missing seeds and still produce
results bit-identical to the serial loops.
"""

from __future__ import annotations

import json

import pytest

from repro.errors import ConfigurationError
from repro.faultsim import CampaignConfig
from repro.faultsim.campaign import CampaignResult, run_point, run_sweep
from repro.runtime import CampaignEngine, TaskSpec

BER = 1e-4
SEEDS = (0, 1, 2, 3)


@pytest.fixture()
def config():
    return CampaignConfig(seeds=SEEDS, batch_size=12, max_samples=24)


def as_dicts(results):
    return [r.to_dict() for r in results]


class StopAfter:
    """Progress reporter that simulates a crash after ``limit`` events."""

    def __init__(self, limit: int):
        self.limit = limit
        self.events = 0

    def __call__(self, event) -> None:
        self.events += 1
        if self.events >= self.limit:
            raise KeyboardInterrupt(f"simulated kill after {self.limit} subtasks")


class TestTaskSpecShapes:
    def test_point_and_batch_are_mutually_exclusive(self):
        with pytest.raises(ConfigurationError, match="exactly one"):
            TaskSpec(ber=BER)
        with pytest.raises(ConfigurationError, match="exactly one"):
            TaskSpec(ber=BER, seed=0, seeds=(0, 1))

    def test_empty_seed_batch_rejected(self):
        with pytest.raises(ConfigurationError, match="non-empty"):
            TaskSpec(ber=BER, seeds=())

    def test_subtasks_expand_in_seed_order(self):
        task = TaskSpec(ber=BER, seeds=(5, 3, 8), tag="batch")
        subs = task.subtasks()
        assert [t.seed for t in subs] == [5, 3, 8]
        assert all(not t.is_batch for t in subs)
        assert all(t.ber == BER and t.tag == "batch" for t in subs)
        # A point task is its own singleton expansion.
        point = TaskSpec(ber=BER, seed=7)
        assert point.subtasks() == (point,)

    def test_batch_task_has_no_single_key(self):
        config = CampaignConfig(seeds=(0, 1))
        batch = TaskSpec(ber=BER, seeds=(0, 1))
        with pytest.raises(ConfigurationError, match="no single key"):
            batch.key("m", "d", config)
        # Its subtasks key exactly like the equivalent point tasks.
        keys = [t.key("m", "d", config) for t in batch.subtasks()]
        assert keys == [
            TaskSpec(ber=BER, seed=s).key("m", "d", config) for s in (0, 1)
        ]


class TestSeedBatchEvaluation:
    def test_batch_task_reduces_to_run_point(self, tiny_quantized, tiny_eval, config):
        qm, _ = tiny_quantized
        x, y = tiny_eval
        serial = run_point(qm, x, y, BER, config=config)
        for workers in (1, 3):
            engine = CampaignEngine(workers=workers)
            (result,) = engine.evaluate_tasks(
                qm, x, y, [TaskSpec(ber=BER, seeds=SEEDS)], config=config
            )
            assert isinstance(result, CampaignResult)
            assert result.to_dict() == serial.to_dict()

    def test_mixed_point_and_batch_tasks(self, tiny_quantized, tiny_eval, config):
        """One batch per-slot shape: point tasks yield SeedPointResults,
        batch tasks CampaignResults, in task order."""
        qm, _ = tiny_quantized
        x, y = tiny_eval
        tasks = [
            TaskSpec(ber=BER, seed=1),
            TaskSpec(ber=BER, seeds=SEEDS),
            TaskSpec(ber=3e-5, seed=0),
        ]
        engine = CampaignEngine(workers=2)
        point_a, batch, point_b = engine.evaluate_tasks(
            qm, x, y, tasks, config=config
        )
        assert engine.last_stats.total_units == 2 + len(SEEDS)
        reference = run_point(qm, x, y, BER, config=config)
        assert batch.to_dict() == reference.to_dict()
        assert point_a.accuracy == reference.per_seed[1]
        serial_b = run_sweep(
            qm, x, y, [3e-5],
            config=CampaignConfig(seeds=(0,), batch_size=12, max_samples=24),
        )[0]
        assert point_b.accuracy == serial_b.per_seed[0]

    def test_stats_count_subtask_units(self, tiny_quantized, tiny_eval, config):
        qm, _ = tiny_quantized
        x, y = tiny_eval
        engine = CampaignEngine(workers=1)
        engine.evaluate_tasks(
            qm, x, y, [TaskSpec(ber=BER, seeds=SEEDS)], config=config
        )
        assert engine.last_stats.total_units == len(SEEDS)
        assert engine.last_stats.computed_units == len(SEEDS)


class TestSubtaskGranularResume:
    def test_kill_mid_batch_then_resume_recomputes_only_missing(
        self, tiny_quantized, tiny_eval, config, tmp_path
    ):
        """Kill a seed-batch evaluation after 2 of 4 seeds; the resumed
        engine must serve those 2 from checkpoint, recompute exactly the
        missing 2, and match the uninterrupted serial result."""
        qm, _ = tiny_quantized
        x, y = tiny_eval
        ckpt = tmp_path / "campaign.json"
        serial = run_point(qm, x, y, BER, config=config)

        killed = CampaignEngine(
            workers=1, checkpoint_path=ckpt, progress=StopAfter(2)
        )
        with pytest.raises(KeyboardInterrupt):
            killed.evaluate_tasks(
                qm, x, y, [TaskSpec(ber=BER, seeds=SEEDS)], config=config
            )
        # The two finished subtasks are on disk as per-seed records.
        lines = ckpt.read_text().splitlines()
        assert json.loads(lines[0]) == {"version": 3}
        finished = [json.loads(line) for line in lines[1:]]
        assert sorted(row["seed"] for row in finished) == [0, 1]

        resumed = CampaignEngine(workers=2, checkpoint_path=ckpt, resume=True)
        (result,) = resumed.evaluate_tasks(
            qm, x, y, [TaskSpec(ber=BER, seeds=SEEDS)], config=config
        )
        assert resumed.last_stats.cached_units == 2
        assert resumed.last_stats.computed_units == len(SEEDS) - 2
        assert result.to_dict() == serial.to_dict()

    def test_kill_mid_sweep_resume_is_bit_identical(
        self, tiny_quantized, tiny_eval, config, tmp_path
    ):
        """The same contract through run_sweep's seed-batch tasks, with
        the kill landing inside the second BER's batch."""
        qm, _ = tiny_quantized
        x, y = tiny_eval
        bers = [3e-5, BER]
        ckpt = tmp_path / "campaign.json"
        serial = run_sweep(qm, x, y, bers, config=config)

        kill_at = len(SEEDS) + 1  # first BER done, second BER 1/4 seeds in
        killed = CampaignEngine(
            workers=1, checkpoint_path=ckpt, progress=StopAfter(kill_at)
        )
        with pytest.raises(KeyboardInterrupt):
            killed.run_sweep(qm, x, y, bers, config=config)

        resumed = CampaignEngine(workers=3, checkpoint_path=ckpt, resume=True)
        results = resumed.run_sweep(qm, x, y, bers, config=config)
        assert resumed.last_stats.cached_units == kill_at
        assert resumed.last_stats.computed_units == 2 * len(SEEDS) - kill_at
        assert as_dicts(results) == as_dicts(serial)

    def test_batch_and_point_tasks_share_checkpoint_entries(
        self, tiny_quantized, tiny_eval, config, tmp_path
    ):
        """A seed-batch task resumes from entries written by the
        equivalent point tasks (identity lives at subtask granularity)."""
        qm, _ = tiny_quantized
        x, y = tiny_eval
        ckpt = tmp_path / "campaign.json"
        points = [TaskSpec(ber=BER, seed=s) for s in SEEDS]
        CampaignEngine(workers=1, checkpoint_path=ckpt).evaluate_tasks(
            qm, x, y, points, config=config
        )
        engine = CampaignEngine(workers=1, checkpoint_path=ckpt, resume=True)
        (batch,) = engine.evaluate_tasks(
            qm, x, y, [TaskSpec(ber=BER, seeds=SEEDS)], config=config
        )
        assert engine.last_stats.computed_units == 0
        assert engine.last_stats.cached_units == len(SEEDS)
        assert batch.to_dict() == run_point(qm, x, y, BER, config=config).to_dict()


class TestAutoSampleShard:
    """sample_shard="auto": fill the pool, never over-split."""

    def counter_config(self, seeds=(0,)):
        from repro.faultsim import FaultModelConfig

        return CampaignConfig(
            seeds=seeds,
            batch_size=12,
            max_samples=24,
            fault_config=FaultModelConfig(rng_scheme="counter"),
        )

    def test_chooser_math(self):
        from repro.runtime import auto_sample_shard

        # One unit, four workers: 4 slices of ceil(24/4) = 6 samples.
        assert auto_sample_shard(24, 4, 1) == 6
        # Two units, eight workers: 4 slices per unit.
        assert auto_sample_shard(24, 8, 2) == 6
        # Enough units already — no slicing.
        assert auto_sample_shard(24, 4, 8) is None
        assert auto_sample_shard(24, 4, 4) is None
        # Serial engine or empty batch — no slicing.
        assert auto_sample_shard(24, 1, 1) is None
        assert auto_sample_shard(24, 4, 0) is None
        # Cannot slice finer than one sample.
        assert auto_sample_shard(5, 16, 1) == 1
        assert auto_sample_shard(1, 16, 1) is None

    def test_chooser_fills_pool_without_oversplitting(self):
        from repro.runtime import auto_sample_shard

        for workers in (2, 3, 4, 7, 16):
            for n_units in (1, 2, 3, 5):
                for n_samples in (8, 24, 100):
                    shard = auto_sample_shard(n_samples, workers, n_units)
                    if shard is None:
                        assert n_units >= workers or n_samples <= 1
                        continue
                    target = -(-workers // n_units)  # slices wanted per unit
                    slices = -(-n_samples // shard)
                    # Fills the pool (unless the sample axis is too short
                    # to split further)...
                    assert slices * n_units >= workers or shard == 1
                    # ...with the *smallest achievable* slice count at or
                    # above the target (uniform slice sizes skip counts),
                    # re-balanced to the largest size realizing it.
                    achievable = {
                        -(-n_samples // s) for s in range(1, n_samples + 1)
                    }
                    wanted = min(
                        (c for c in achievable if c >= target),
                        default=max(achievable),
                    )
                    assert slices == wanted, (workers, n_units, n_samples)
                    assert shard == -(-n_samples // slices)

    def test_auto_engine_fills_pool_bit_identically(
        self, tiny_quantized, tiny_eval
    ):
        qm, _ = tiny_quantized
        x, y = tiny_eval
        config = self.counter_config()
        serial = run_point(qm, x, y, BER, config=config)
        engine = CampaignEngine(workers=4, sample_shard="auto")
        result = engine.run_point(qm, x, y, BER, config=config)
        assert engine.last_stats.total_units == 4
        assert result.to_dict() == serial.to_dict()

    def test_auto_declines_under_stream_scheme(self, tiny_quantized, tiny_eval):
        """Auto never forces the counter requirement: stream batches just
        run unsliced (an explicit integer shard still errors)."""
        qm, _ = tiny_quantized
        x, y = tiny_eval
        config = CampaignConfig(seeds=(0, 1), batch_size=12, max_samples=24)
        engine = CampaignEngine(workers=4, sample_shard="auto")
        serial = run_point(qm, x, y, BER, config=config)
        result = engine.run_point(qm, x, y, BER, config=config)
        assert engine.last_stats.total_units == 2  # one per seed, unsliced
        assert result.to_dict() == serial.to_dict()

    def test_auto_no_split_when_pool_already_full(
        self, tiny_quantized, tiny_eval
    ):
        qm, _ = tiny_quantized
        x, y = tiny_eval
        config = self.counter_config(seeds=(0, 1, 2, 3))
        engine = CampaignEngine(workers=2, sample_shard="auto")
        engine.run_point(qm, x, y, BER, config=config)
        assert engine.last_stats.total_units == 4

    def test_invalid_shard_strings_rejected(self):
        with pytest.raises(ConfigurationError, match="auto"):
            CampaignEngine(sample_shard="bogus")
