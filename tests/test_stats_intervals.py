"""Unit tests for the sequential statistics: intervals and stop rules.

Pure-math coverage (no models, no campaigns): interval correctness
against known reference values, edge behavior at the accuracy extremes,
argument validation, and the :class:`SequentialAccuracy` prefix/overshoot
semantics the determinism contract builds on.
"""

from __future__ import annotations

import math

import pytest

from repro.errors import ConfigurationError
from repro.stats import (
    SequentialAccuracy,
    StopRule,
    binomial_interval,
    empirical_bernstein_interval,
    exact_correct_count,
    extended_seeds,
    normal_quantile,
    wilson_interval,
)


class TestNormalQuantile:
    def test_reference_values(self):
        # z_{0.975} = 1.959964..., z_{0.995} = 2.575829...
        assert normal_quantile(0.975) == pytest.approx(1.959964, abs=1e-5)
        assert normal_quantile(0.995) == pytest.approx(2.575829, abs=1e-5)
        assert normal_quantile(0.5) == pytest.approx(0.0, abs=1e-12)

    def test_symmetry(self):
        for p in (0.01, 0.2, 0.4, 0.6, 0.8, 0.99):
            assert normal_quantile(p) == pytest.approx(-normal_quantile(1 - p), abs=1e-9)

    def test_tail_branches(self):
        # Below/above the 0.02425 rational-approximation switch point.
        assert normal_quantile(0.001) == pytest.approx(-3.090232, abs=1e-5)
        assert normal_quantile(0.999) == pytest.approx(3.090232, abs=1e-5)

    @pytest.mark.parametrize("p", [0.0, 1.0, -0.1, 1.1])
    def test_rejects_out_of_domain(self, p):
        with pytest.raises(ConfigurationError, match="normal_quantile"):
            normal_quantile(p)


class TestWilsonInterval:
    def test_reference_value(self):
        # Canonical textbook check: 8/10 at 95% -> (0.490, 0.943).
        ci = wilson_interval(8, 10, 0.95)
        assert ci.estimate == pytest.approx(0.8)
        assert ci.lower == pytest.approx(0.4901, abs=2e-4)
        assert ci.upper == pytest.approx(0.9433, abs=2e-4)

    def test_stays_in_unit_interval_at_extremes(self):
        top = wilson_interval(160, 160)
        bottom = wilson_interval(0, 160)
        assert top.upper == pytest.approx(1.0) and top.lower > 0.95
        assert bottom.lower == pytest.approx(0.0) and bottom.upper < 0.05
        assert 0.0 <= bottom.lower and top.upper <= 1.0
        # Never zero-width at p-hat in {0, 1} (the low-BER regime).
        assert top.halfwidth > 0.0 and bottom.halfwidth > 0.0

    def test_halfwidth_shrinks_with_n(self):
        widths = [wilson_interval(n // 2, n).halfwidth for n in (10, 100, 1000)]
        assert widths[0] > widths[1] > widths[2]

    def test_higher_confidence_is_wider(self):
        assert (
            wilson_interval(50, 100, 0.99).halfwidth
            > wilson_interval(50, 100, 0.95).halfwidth
        )


class TestBernsteinInterval:
    def test_matches_closed_form(self):
        correct, total, conf = 158, 160, 0.95
        p = correct / total
        n = float(total)
        log_term = math.log(2.0 / (1.0 - conf))
        variance = p * (1.0 - p) * n / (n - 1.0)
        spread = math.sqrt(2.0 * variance * log_term / n) + 7.0 * log_term / (
            3.0 * (n - 1.0)
        )
        ci = empirical_bernstein_interval(correct, total, conf)
        assert ci.lower == pytest.approx(max(0.0, p - spread))
        assert ci.upper == pytest.approx(min(1.0, p + spread))

    def test_variance_adaptive_at_zero_variance(self):
        # All-correct counts: the sqrt term vanishes, leaving the 1/(n-1)
        # additive term — far tighter than the p=1/2 interval.
        clean = empirical_bernstein_interval(640, 640)
        noisy = empirical_bernstein_interval(320, 640)
        assert clean.halfwidth < noisy.halfwidth / 3

    def test_single_trial_is_vacuous_not_an_error(self):
        ci = empirical_bernstein_interval(1, 1)
        assert (ci.lower, ci.upper) == (0.0, 1.0)

    def test_dispatcher(self):
        assert binomial_interval("wilson", 8, 10).method == "wilson"
        assert binomial_interval("bernstein", 8, 10).method == "bernstein"
        with pytest.raises(ConfigurationError, match="unknown interval method"):
            binomial_interval("bayes", 8, 10)

    @pytest.mark.parametrize("correct,total", [(-1, 10), (11, 10), (0, 0)])
    def test_rejects_bad_counts(self, correct, total):
        with pytest.raises(ConfigurationError):
            wilson_interval(correct, total)


class TestExactCorrectCount:
    def test_inverts_campaign_division(self):
        for total in (1, 48, 160, 997):
            for correct in (0, 1, total // 2, total):
                accuracy = float(correct) / total
                assert exact_correct_count(accuracy, total) == correct

    def test_rejects_foreign_values(self):
        with pytest.raises(ConfigurationError, match="exact count ratio"):
            exact_correct_count(0.5000001, 160)
        with pytest.raises(ConfigurationError, match="exact count ratio"):
            exact_correct_count(1.5, 160)
        with pytest.raises(ConfigurationError, match="total"):
            exact_correct_count(0.5, 0)


class TestStopRule:
    def test_validation(self):
        with pytest.raises(ConfigurationError, match="halfwidth"):
            StopRule(halfwidth=0.0)
        with pytest.raises(ConfigurationError, match="halfwidth"):
            StopRule(halfwidth=0.5)
        with pytest.raises(ConfigurationError, match="confidence"):
            StopRule(confidence=1.0)
        with pytest.raises(ConfigurationError, match="interval method"):
            StopRule(method="bayes")
        with pytest.raises(ConfigurationError, match="min_seeds"):
            StopRule(min_seeds=0)
        with pytest.raises(ConfigurationError, match="max_seeds"):
            StopRule(min_seeds=4, max_seeds=3)
        with pytest.raises(ConfigurationError, match="round_seeds"):
            StopRule(round_seeds=0)

    def test_identity_excludes_round_seeds(self):
        a = StopRule(round_seeds=1)
        b = StopRule(round_seeds=3)
        assert a.identity() == b.identity()
        assert StopRule(halfwidth=0.05).identity() != a.identity()


class TestSequentialAccuracy:
    def test_stops_at_smallest_qualifying_prefix(self):
        # 160/160 per seed: Wilson halfwidth at n=320 is ~0.0118 < 0.02,
        # and min_seeds=2 makes 2 the first prefix even checked.
        tracker = SequentialAccuracy(StopRule(min_seeds=2, max_seeds=8))
        assert tracker.push(160, 160) is False
        assert tracker.push(160, 160) is True
        assert tracker.stopped and tracker.stopped_at == 2
        assert tracker.seeds_used == 2

    def test_overshoot_never_moves_the_decision(self):
        tracker = SequentialAccuracy(StopRule(min_seeds=2, max_seeds=8))
        tracker.push(160, 160)
        tracker.push(160, 160)
        interval_at_stop = tracker.interval()
        # A round-scheduled driver may deliver extra seeds after the stop.
        tracker.push(80, 160)
        assert tracker.stopped_at == 2 and tracker.seeds_used == 2
        assert tracker.interval() == interval_at_stop
        assert tracker.seeds_seen == 3

    def test_exhaustion_at_max_seeds(self):
        # 50% accuracy never reaches a 0.02 halfwidth in 3 seeds of 160.
        tracker = SequentialAccuracy(StopRule(min_seeds=2, max_seeds=3))
        assert tracker.push(80, 160) is False
        assert tracker.push(80, 160) is False
        assert tracker.push(80, 160) is True
        assert tracker.exhausted and not tracker.stopped
        assert tracker.seeds_used == 3

    def test_min_seeds_blocks_early_decision(self):
        tracker = SequentialAccuracy(StopRule(min_seeds=4, max_seeds=8))
        for _ in range(3):
            assert tracker.push(160, 160) is False
        assert tracker.push(160, 160) is True
        assert tracker.stopped_at == 4

    def test_push_validation(self):
        tracker = SequentialAccuracy(StopRule())
        with pytest.raises(ConfigurationError, match="total"):
            tracker.push(0, 0)
        with pytest.raises(ConfigurationError, match="correct"):
            tracker.push(5, 4)

    def test_interval_at_bounds(self):
        tracker = SequentialAccuracy(StopRule())
        tracker.push(10, 10)
        with pytest.raises(ConfigurationError, match="interval_at"):
            tracker.interval_at(0)
        with pytest.raises(ConfigurationError, match="interval_at"):
            tracker.interval_at(2)


class TestExtendedSeeds:
    def test_extends_past_configured_maximum(self):
        assert extended_seeds((0, 1), 5) == (0, 1, 2, 3, 4)
        assert extended_seeds((3, 7), 4) == (3, 7, 8, 9)

    def test_truncates_and_passes_through(self):
        assert extended_seeds((0, 1, 2), 2) == (0, 1)
        assert extended_seeds((0, 1, 2), 3) == (0, 1, 2)
        assert extended_seeds((), 3) == (0, 1, 2)

    def test_rejects_empty_budget(self):
        with pytest.raises(ConfigurationError, match="count"):
            extended_seeds((0, 1), 0)
