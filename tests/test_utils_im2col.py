"""Tests for repro.utils.im2col."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ShapeError
from repro.utils.im2col import col2im, conv_output_size, im2col, pad_nchw


def reference_conv(x, w, stride, padding):
    """Naive direct convolution for cross-checking."""
    n, c, h, wd = x.shape
    k, _, r, s = w.shape
    p = conv_output_size(h, r, stride, padding)
    q = conv_output_size(wd, s, stride, padding)
    xp = np.pad(x, ((0, 0), (0, 0), (padding,) * 2, (padding,) * 2))
    out = np.zeros((n, k, p, q))
    for i in range(p):
        for j in range(q):
            patch = xp[:, :, i * stride : i * stride + r, j * stride : j * stride + s]
            out[:, :, i, j] = np.einsum("ncrs,kcrs->nk", patch, w)
    return out


class TestConvOutputSize:
    @pytest.mark.parametrize(
        "size,k,s,p,expected", [(32, 3, 1, 1, 32), (32, 3, 2, 1, 16), (7, 7, 2, 3, 4)]
    )
    def test_values(self, size, k, s, p, expected):
        assert conv_output_size(size, k, s, p) == expected

    def test_rejects_degenerate(self):
        with pytest.raises(ShapeError):
            conv_output_size(2, 5, 1, 0)


class TestPadNchw:
    def test_noop_for_zero(self, rng):
        x = rng.standard_normal((2, 3, 4, 4))
        assert pad_nchw(x, 0) is x

    def test_pads_spatial_only(self, rng):
        x = rng.standard_normal((2, 3, 4, 4))
        padded = pad_nchw(x, 2)
        assert padded.shape == (2, 3, 8, 8)
        assert np.all(padded[:, :, :2, :] == 0)

    def test_rejects_bad_rank(self):
        with pytest.raises(ShapeError):
            pad_nchw(np.zeros((3, 4, 4)), 1)


class TestIm2colConvolution:
    @pytest.mark.parametrize("stride,padding", [(1, 0), (1, 1), (2, 1), (2, 3)])
    def test_matches_reference_conv(self, rng, stride, padding):
        x = rng.standard_normal((2, 3, 9, 8))
        w = rng.standard_normal((5, 3, 3, 3))
        cols = im2col(x, (3, 3), stride, padding)
        p = conv_output_size(9, 3, stride, padding)
        q = conv_output_size(8, 3, stride, padding)
        out = (w.reshape(5, -1) @ cols).reshape(2, 5, p, q)
        np.testing.assert_allclose(out, reference_conv(x, w, stride, padding), atol=1e-10)

    def test_reduction_axis_is_c_major(self, rng):
        """The fault injector depends on the (c, r, s) ordering."""
        x = rng.standard_normal((1, 2, 4, 4))
        cols = im2col(x, (3, 3), 1, 0)
        # Element (c=1, r=0, s=0) of output (0, 0) is x[0, 1, 0, 0].
        assert cols[0, 9, 0] == pytest.approx(x[0, 1, 0, 0])

    def test_integer_dtype_preserved(self):
        x = np.arange(32, dtype=np.int64).reshape(1, 2, 4, 4)
        cols = im2col(x, (2, 2), 1, 0)
        assert cols.dtype == np.int64


class TestCol2im:
    def test_adjoint_property(self, rng):
        """<im2col(x), y> == <x, col2im(y)> — required for conv backward."""
        x = rng.standard_normal((2, 3, 6, 6))
        cols = im2col(x, (3, 3), 2, 1)
        y = rng.standard_normal(cols.shape)
        lhs = float((cols * y).sum())
        rhs = float((x * col2im(y, x.shape, (3, 3), 2, 1)).sum())
        assert lhs == pytest.approx(rhs, rel=1e-10)

    @settings(max_examples=25, deadline=None)
    @given(
        h=st.integers(4, 9),
        w=st.integers(4, 9),
        stride=st.integers(1, 2),
        padding=st.integers(0, 1),
    )
    def test_adjoint_property_hypothesis(self, h, w, stride, padding):
        rng = np.random.default_rng(h * 100 + w * 10 + stride + padding)
        x = rng.standard_normal((1, 2, h, w))
        cols = im2col(x, (3, 3), stride, padding)
        y = rng.standard_normal(cols.shape)
        lhs = float((cols * y).sum())
        rhs = float((x * col2im(y, x.shape, (3, 3), stride, padding)).sum())
        assert abs(lhs - rhs) < 1e-8

    def test_rejects_shape_mismatch(self, rng):
        with pytest.raises(ShapeError):
            col2im(rng.standard_normal((1, 18, 4)), (1, 2, 5, 5), (3, 3), 1, 0)
