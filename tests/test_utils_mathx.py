"""Tests for repro.utils.mathx."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.utils.mathx import ceil_div, ilog2, next_pow2, prod


class TestCeilDiv:
    @pytest.mark.parametrize(
        "a,b,expected", [(0, 1, 0), (1, 1, 1), (5, 2, 3), (6, 2, 3), (7, 8, 1)]
    )
    def test_values(self, a, b, expected):
        assert ceil_div(a, b) == expected

    def test_rejects_zero_divisor(self):
        with pytest.raises(ValueError):
            ceil_div(1, 0)

    def test_rejects_negative_dividend(self):
        with pytest.raises(ValueError):
            ceil_div(-1, 2)

    @given(st.integers(0, 10**9), st.integers(1, 10**6))
    def test_matches_definition(self, a, b):
        result = ceil_div(a, b)
        assert (result - 1) * b < a or a == 0
        assert result * b >= a


class TestIlog2:
    @pytest.mark.parametrize("x,expected", [(1, 0), (2, 1), (1024, 10)])
    def test_values(self, x, expected):
        assert ilog2(x) == expected

    @pytest.mark.parametrize("x", [0, -4, 3, 6])
    def test_rejects_non_powers(self, x):
        with pytest.raises(ValueError):
            ilog2(x)


class TestNextPow2:
    @pytest.mark.parametrize(
        "x,expected", [(0, 1), (1, 1), (2, 2), (3, 4), (17, 32), (1024, 1024)]
    )
    def test_values(self, x, expected):
        assert next_pow2(x) == expected

    @given(st.integers(1, 10**9))
    def test_bounds(self, x):
        p = next_pow2(x)
        assert p >= x and p < 2 * x
        assert p & (p - 1) == 0


class TestProd:
    def test_empty_is_one(self):
        assert prod([]) == 1

    def test_product(self):
        assert prod([2, 3, 4]) == 24
