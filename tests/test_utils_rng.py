"""Tests for repro.utils.rng."""

import numpy as np
import pytest

from repro.utils.rng import RngFactory, as_rng, site_rng, spawn_rng


class TestAsRng:
    def test_int_seed_is_deterministic(self):
        a = as_rng(42).random(5)
        b = as_rng(42).random(5)
        assert np.array_equal(a, b)

    def test_different_seeds_differ(self):
        assert not np.array_equal(as_rng(1).random(5), as_rng(2).random(5))

    def test_generator_passthrough(self):
        gen = np.random.default_rng(0)
        assert as_rng(gen) is gen

    def test_none_gives_generator(self):
        assert isinstance(as_rng(None), np.random.Generator)


class TestSpawnRng:
    def test_labels_decorrelate(self):
        parent_a = np.random.default_rng(0)
        parent_b = np.random.default_rng(0)
        child_a = spawn_rng(parent_a, "alpha")
        child_b = spawn_rng(parent_b, "beta")
        assert not np.array_equal(child_a.random(8), child_b.random(8))

    def test_same_label_same_parent_state_reproduces(self):
        child_1 = spawn_rng(np.random.default_rng(0), "layer3")
        child_2 = spawn_rng(np.random.default_rng(0), "layer3")
        assert np.array_equal(child_1.random(8), child_2.random(8))


class TestSiteRng:
    def test_pure_function_of_key(self):
        a = site_rng(7, "layer3", "wg_mul", 4).random(8)
        b = site_rng(7, "layer3", "wg_mul", 4).random(8)
        assert np.array_equal(a, b)

    def test_every_key_component_matters(self):
        base = site_rng(7, "layer3", "wg_mul", 4).random(8)
        for key in (
            (8, "layer3", "wg_mul", 4),      # seed
            (7, "layer4", "wg_mul", 4),      # layer
            (7, "layer3", "wg_acc_add", 4),  # site
            (7, "layer3", "wg_mul", 5),      # chunk
        ):
            assert not np.array_equal(site_rng(*key).random(8), base), key

    def test_draw_order_between_keys_is_free(self):
        """Unlike a sequential stream, interleaving two keyed streams in
        any order cannot shift either one's draws."""
        first_then_second = [
            site_rng(1, "a", 0).random(4),
            site_rng(1, "b", 0).random(4),
        ]
        second_then_first = [
            site_rng(1, "b", 0).random(4),
            site_rng(1, "a", 0).random(4),
        ]
        assert np.array_equal(first_then_second[0], second_then_first[1])
        assert np.array_equal(first_then_second[1], second_then_first[0])

    def test_int_and_str_labels_do_not_collide_trivially(self):
        assert not np.array_equal(
            site_rng(1, 3).random(4), site_rng(1, "3").random(4)
        )

    def test_uses_counter_based_philox(self):
        assert isinstance(site_rng(0, "x").bit_generator, np.random.Philox)


class TestRngFactory:
    def test_named_streams_reproducible(self):
        factory = RngFactory(99)
        assert np.array_equal(factory.get("x").random(4), factory.get("x").random(4))

    def test_named_streams_independent(self):
        factory = RngFactory(99)
        assert not np.array_equal(
            factory.get("x").random(4), factory.get("y").random(4)
        )

    def test_seed_property(self):
        assert RngFactory(5).seed == 5

    def test_rejects_non_int_seed(self):
        with pytest.raises(TypeError):
            RngFactory("not-a-seed")

    def test_repr_mentions_seed(self):
        assert "seed=7" in repr(RngFactory(7))
