"""Tests for repro.utils.rng."""

import numpy as np
import pytest

from repro.utils.rng import RngFactory, as_rng, spawn_rng


class TestAsRng:
    def test_int_seed_is_deterministic(self):
        a = as_rng(42).random(5)
        b = as_rng(42).random(5)
        assert np.array_equal(a, b)

    def test_different_seeds_differ(self):
        assert not np.array_equal(as_rng(1).random(5), as_rng(2).random(5))

    def test_generator_passthrough(self):
        gen = np.random.default_rng(0)
        assert as_rng(gen) is gen

    def test_none_gives_generator(self):
        assert isinstance(as_rng(None), np.random.Generator)


class TestSpawnRng:
    def test_labels_decorrelate(self):
        parent_a = np.random.default_rng(0)
        parent_b = np.random.default_rng(0)
        child_a = spawn_rng(parent_a, "alpha")
        child_b = spawn_rng(parent_b, "beta")
        assert not np.array_equal(child_a.random(8), child_b.random(8))

    def test_same_label_same_parent_state_reproduces(self):
        child_1 = spawn_rng(np.random.default_rng(0), "layer3")
        child_2 = spawn_rng(np.random.default_rng(0), "layer3")
        assert np.array_equal(child_1.random(8), child_2.random(8))


class TestRngFactory:
    def test_named_streams_reproducible(self):
        factory = RngFactory(99)
        assert np.array_equal(factory.get("x").random(4), factory.get("x").random(4))

    def test_named_streams_independent(self):
        factory = RngFactory(99)
        assert not np.array_equal(
            factory.get("x").random(4), factory.get("y").random(4)
        )

    def test_seed_property(self):
        assert RngFactory(5).seed == 5

    def test_rejects_non_int_seed(self):
        with pytest.raises(TypeError):
            RngFactory("not-a-seed")

    def test_repr_mentions_seed(self):
        assert "seed=7" in repr(RngFactory(7))
