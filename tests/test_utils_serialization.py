"""Tests for JSON/NPZ persistence helpers."""

import numpy as np
import pytest

from repro.utils.serialization import (
    load_json,
    load_npz_state,
    save_json,
    save_npz_state,
)


class TestJson:
    def test_roundtrip(self, tmp_path):
        payload = {"a": 1, "b": [1.5, 2.5], "c": {"nested": True}}
        path = save_json(tmp_path / "x.json", payload)
        assert load_json(path) == payload

    def test_numpy_types_serialized(self, tmp_path):
        payload = {
            "int": np.int64(7),
            "float": np.float32(1.5),
            "bool": np.bool_(True),
            "array": np.arange(3),
        }
        path = save_json(tmp_path / "np.json", payload)
        loaded = load_json(path)
        assert loaded == {"int": 7, "float": 1.5, "bool": True, "array": [0, 1, 2]}

    def test_creates_parent_dirs(self, tmp_path):
        path = save_json(tmp_path / "deep" / "nested" / "x.json", {})
        assert path.exists()


class TestNpz:
    def test_roundtrip(self, tmp_path):
        state = {"w": np.arange(6.0).reshape(2, 3), "b": np.zeros(3)}
        path = save_npz_state(tmp_path / "state.npz", state)
        loaded = load_npz_state(path)
        assert set(loaded) == {"w", "b"}
        np.testing.assert_array_equal(loaded["w"], state["w"])
