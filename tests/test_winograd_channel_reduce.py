"""Exactness tests for the ``_channel_reduce`` fast-path boundary.

The integer Winograd pipeline reduces over channels either as a float64
BLAS matmul (exact only while every partial product magnitude stays inside
the 52-bit mantissa) or as an int64 einsum fallback.  The gate is
``u_max * v_max * c < 2**52`` computed from actual magnitudes; these tests
construct inputs straddling that threshold and assert both paths remain
exact against an independent pure-Python integer reference.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.winograd.conv2d import _channel_reduce

THRESHOLD = 2**52


def exact_reference(u: np.ndarray, v: np.ndarray) -> np.ndarray:
    """Channel reduction with Python big-int arithmetic (overflow-proof)."""
    n, c, t_count, th, tw = u.shape
    k = v.shape[0]
    out = np.zeros((n, k, t_count, th, tw), dtype=np.int64)
    for ni in range(n):
        for ki in range(k):
            for ti in range(t_count):
                for i in range(th):
                    for j in range(tw):
                        total = sum(
                            int(u[ni, ci, ti, i, j]) * int(v[ki, ci, i, j])
                            for ci in range(c)
                        )
                        out[ni, ki, ti, i, j] = total
    return out


def make_inputs(u_val: int, v_vals: list[int]) -> tuple[np.ndarray, np.ndarray]:
    """(1, C, 1, 2, 2) input and (1, C, 2, 2) filter blocks of constants."""
    c = len(v_vals)
    u = np.full((1, c, 1, 2, 2), u_val, dtype=np.int64)
    v = np.stack(
        [np.full((2, 2), val, dtype=np.int64) for val in v_vals]
    ).reshape(1, c, 2, 2)
    return u, v


class RintSpy:
    """Records whether the float64 fast path (which calls np.rint) ran."""

    def __init__(self, monkeypatch):
        self.calls = 0
        original = np.rint

        def spy(*args, **kwargs):
            self.calls += 1
            return original(*args, **kwargs)

        monkeypatch.setattr(np, "rint", spy)


class TestChannelReduceBoundary:
    def test_just_below_threshold_uses_fast_path_exactly(self, monkeypatch):
        # u_max * v_max * c == 2**52 - 2**26 < 2**52 -> float64 BLAS path.
        u, v = make_inputs(2**26, [2**26 - 1])
        assert int(np.abs(u).max()) * int(np.abs(v).max()) * 1 < THRESHOLD
        spy = RintSpy(monkeypatch)
        got = _channel_reduce(u, v)
        assert spy.calls > 0, "expected the float64 fast path"
        np.testing.assert_array_equal(got, exact_reference(u, v))

    def test_at_threshold_uses_int64_fallback_exactly(self, monkeypatch):
        # u_max * v_max * c == 2**52 exactly -> the strict < fails -> int64.
        u, v = make_inputs(2**26, [2**26])
        assert int(np.abs(u).max()) * int(np.abs(v).max()) * 1 == THRESHOLD
        spy = RintSpy(monkeypatch)
        got = _channel_reduce(u, v)
        assert spy.calls == 0, "expected the int64 fallback"
        np.testing.assert_array_equal(got, exact_reference(u, v))

    def test_above_threshold_sums_past_float53_stay_exact(self, monkeypatch):
        # Three channels of odd-valued products: the accumulated sum passes
        # 2**53 with low-order bits set, which float64 could not represent.
        u, v = make_inputs(2**26, [2**26 - 1, 2**26 - 3, 2**26 - 5])
        spy = RintSpy(monkeypatch)
        got = _channel_reduce(u, v)
        assert spy.calls == 0, "expected the int64 fallback"
        ref = exact_reference(u, v)
        assert int(ref.max()) > 2**53
        np.testing.assert_array_equal(got, ref)

    def test_negative_magnitudes_gate_on_abs(self, monkeypatch):
        # Magnitude check must use |u|, |v|: negative extremes at the
        # threshold must also take the fallback.
        u, v = make_inputs(-(2**26), [2**26])
        spy = RintSpy(monkeypatch)
        got = _channel_reduce(u, v)
        assert spy.calls == 0, "expected the int64 fallback"
        np.testing.assert_array_equal(got, exact_reference(u, v))

    @pytest.mark.parametrize("seed", [0, 1])
    def test_random_small_values_fast_path(self, seed, monkeypatch):
        rng = np.random.default_rng(seed)
        u = rng.integers(-(2**15), 2**15, size=(2, 4, 3, 4, 4)).astype(np.int64)
        v = rng.integers(-(2**15), 2**15, size=(3, 4, 4, 4)).astype(np.int64)
        spy = RintSpy(monkeypatch)
        got = _channel_reduce(u, v)
        assert spy.calls > 0, "expected the float64 fast path"
        np.testing.assert_array_equal(got, exact_reference(u, v))
