"""Tests for 2-D Winograd convolution kernels (float and integer)."""

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.utils.im2col import im2col
from repro.winograd import (
    TileGrid,
    assemble_tiles,
    extract_tiles,
    transform_filter_int,
    winograd_conv2d_float,
    winograd_conv2d_int,
)


def direct_conv_int(x, w, padding):
    """Exact integer direct convolution via im2col."""
    n, c, h, wd = x.shape
    k, _, r, s = w.shape
    cols = im2col(x, (r, s), 1, padding)
    out = np.einsum("kr,nrp->nkp", w.reshape(k, -1), cols)
    p, q = h + 2 * padding - r + 1, wd + 2 * padding - s + 1
    return out.reshape(n, k, p, q)


class TestTiling:
    def test_grid_geometry(self):
        grid = TileGrid(out_h=7, out_w=5, m=2, r=3)
        assert (grid.tiles_h, grid.tiles_w) == (4, 3)
        assert grid.num_tiles == 12
        assert grid.padded_in_h == 3 * 2 + 4

    def test_tile_origin(self):
        grid = TileGrid(out_h=4, out_w=4, m=2, r=3)
        assert grid.tile_origin(0) == (0, 0)
        assert grid.tile_origin(3) == (2, 2)

    def test_extract_assemble_roundtrip_values(self, rng):
        grid = TileGrid(out_h=6, out_w=6, m=2, r=3)
        x = rng.integers(-10, 10, size=(2, 3, 8, 8)).astype(np.int64)
        tiles = extract_tiles(x, grid)
        assert tiles.shape == (2, 3, 9, 4, 4)
        # Tile 0 equals the top-left 4x4 window.
        np.testing.assert_array_equal(tiles[:, :, 0], x[:, :, :4, :4])

    def test_assemble_crops_overhang(self, rng):
        grid = TileGrid(out_h=3, out_w=3, m=2, r=3)
        tiles = rng.integers(0, 5, size=(1, 1, grid.num_tiles, 2, 2)).astype(np.int64)
        out = assemble_tiles(tiles, grid)
        assert out.shape == (1, 1, 3, 3)

    def test_extract_rejects_oversized_input(self, rng):
        grid = TileGrid(out_h=2, out_w=2, m=2, r=3)
        with pytest.raises(ShapeError):
            extract_tiles(np.zeros((1, 1, 20, 20)), grid)


class TestFloatWinograd:
    @pytest.mark.parametrize("m", [2, 4, 6])
    @pytest.mark.parametrize("padding", [0, 1])
    def test_matches_direct(self, rng, m, padding):
        x = rng.standard_normal((2, 3, 10, 9))
        w = rng.standard_normal((4, 3, 3, 3))
        y = winograd_conv2d_float(x, w, padding=padding, m=m)
        expected = direct_conv_int(x, w, padding)
        np.testing.assert_allclose(y, expected, atol=1e-9)

    def test_bias_applied(self, rng):
        x = rng.standard_normal((1, 2, 6, 6))
        w = rng.standard_normal((3, 2, 3, 3))
        b = np.array([1.0, -2.0, 0.5])
        y = winograd_conv2d_float(x, w, bias=b, padding=1, m=2)
        y0 = winograd_conv2d_float(x, w, padding=1, m=2)
        np.testing.assert_allclose(y - y0, np.broadcast_to(b.reshape(1, 3, 1, 1), y.shape))

    def test_rejects_channel_mismatch(self, rng):
        with pytest.raises(ShapeError):
            winograd_conv2d_float(
                rng.standard_normal((1, 3, 8, 8)), rng.standard_normal((2, 4, 3, 3))
            )

    def test_rejects_non_square_kernel(self, rng):
        with pytest.raises(ShapeError):
            winograd_conv2d_float(
                rng.standard_normal((1, 3, 8, 8)), rng.standard_normal((2, 3, 3, 5))
            )


class TestIntegerWinograd:
    @pytest.mark.parametrize("m", [2, 4])
    @pytest.mark.parametrize("padding", [0, 1])
    def test_scaled_output_exact(self, rng, m, padding):
        """y_int == output_scale_2d * direct integer convolution, exactly."""
        x = rng.integers(-(2**12), 2**12, size=(2, 5, 9, 8)).astype(np.int64)
        w = rng.integers(-(2**12), 2**12, size=(4, 5, 3, 3)).astype(np.int64)
        from repro.winograd import get_transform

        tf = get_transform(m, 3)
        v = transform_filter_int(w, tf)
        ctx = winograd_conv2d_int(x, v, padding=padding, m=m)
        direct = direct_conv_int(x, w, padding)
        out_h, out_w = direct.shape[2], direct.shape[3]
        np.testing.assert_array_equal(
            ctx.y_int[:, :, :out_h, :out_w], direct * tf.output_scale_2d
        )

    def test_intermediates_kept_and_dropped(self, rng):
        x = rng.integers(-100, 100, size=(1, 2, 6, 6)).astype(np.int64)
        w = rng.integers(-100, 100, size=(2, 2, 3, 3)).astype(np.int64)
        from repro.winograd import get_transform

        v = transform_filter_int(w, get_transform(2, 3))
        kept = winograd_conv2d_int(x, v, m=2, keep_intermediates=True)
        assert kept.u_int is not None and kept.m_int is not None
        dropped = winograd_conv2d_int(x, v, m=2, keep_intermediates=False)
        assert dropped.u_int is None and dropped.m_int is None
        np.testing.assert_array_equal(kept.y_int, dropped.y_int)

    def test_rejects_bad_filter_shape(self, rng):
        x = rng.integers(-10, 10, size=(1, 2, 6, 6)).astype(np.int64)
        with pytest.raises(ShapeError):
            winograd_conv2d_int(x, np.zeros((2, 2, 3, 3), dtype=np.int64), m=2)

    def test_large_values_stay_exact(self):
        """Worst-case magnitudes (int16 extremes) through the int path."""
        x = np.full((1, 4, 6, 6), 32767, dtype=np.int64)
        w = np.full((2, 4, 3, 3), -32768, dtype=np.int64)
        from repro.winograd import get_transform

        tf = get_transform(2, 3)
        v = transform_filter_int(w, tf)
        ctx = winograd_conv2d_int(x, v, padding=1, m=2)
        direct = direct_conv_int(x, w, 1)
        np.testing.assert_array_equal(ctx.y_int, direct * tf.output_scale_2d)


class TestContextAnnotations:
    def test_optional_intermediates_declared_optional(self):
        """Regression: u_int/m_int are None when intermediates are dropped,
        so their declared types must admit None (they used to claim a bare
        np.ndarray)."""
        import typing

        from repro.winograd.conv2d import WinogradConvContext

        hints = typing.get_type_hints(WinogradConvContext)
        for name in ("u_int", "m_int"):
            assert type(None) in typing.get_args(hints[name]), (
                f"{name} must be annotated np.ndarray | None"
            )
        for name in ("v_int", "y_int"):
            assert hints[name] is np.ndarray


class TestEinsumPathCache:
    """The integer path's cached contraction paths stay integer-exact."""

    def test_cached_paths_match_unoptimized_einsum(self):
        from repro.winograd.conv2d import _EINSUM_PATHS
        from repro.winograd.transforms import get_transform

        rng = np.random.default_rng(3)
        tf = get_transform(2, 3)
        x = rng.integers(-500, 500, size=(3, 5, 10, 10)).astype(np.int64)
        w = rng.integers(-80, 80, size=(7, 5, 3, 3)).astype(np.int64)

        v = transform_filter_int(w, tf)
        ctx = winograd_conv2d_int(x, v, padding=0, m=2)
        # The filter transform, input transform and output transform each
        # memoize one path per operand-shape signature.
        assert len(_EINSUM_PATHS) >= 3

        g, bt = tf.g_int, tf.bt_int
        v_ref = np.einsum("ij,kcjl,ml->kcim", g, w, g, optimize=False)
        np.testing.assert_array_equal(v, v_ref)
        grid = TileGrid(out_h=8, out_w=8, m=2, r=3)
        tiles = extract_tiles(x, grid)
        u_ref = np.einsum("ij,nctjl,ml->nctim", bt, tiles, bt, optimize=False)
        np.testing.assert_array_equal(ctx.u_int, u_ref)

    def test_repeated_shapes_reuse_one_path(self):
        from repro.winograd.conv2d import _EINSUM_PATHS
        from repro.winograd.transforms import get_transform

        tf = get_transform(2, 3)
        rng = np.random.default_rng(4)
        w = rng.integers(-10, 10, size=(4, 3, 3, 3)).astype(np.int64)
        before = len(_EINSUM_PATHS)
        transform_filter_int(w, tf)
        after_first = len(_EINSUM_PATHS)
        transform_filter_int(w, tf)
        assert len(_EINSUM_PATHS) == after_first >= before
