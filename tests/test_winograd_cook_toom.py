"""Tests for exact Cook–Toom transform construction."""

from fractions import Fraction

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import TransformError
from repro.winograd.cook_toom import (
    cook_toom_1d,
    default_points,
    fraction_matrix_inverse,
    scale_to_integer,
)


def correlation(g, d, m):
    """Reference 1-D correlation with r taps and m outputs."""
    r = len(g)
    return [sum(g[j] * d[i + j] for j in range(r)) for i in range(m)]


class TestFractionMatrixInverse:
    def test_identity(self):
        eye = [[Fraction(int(i == j)) for j in range(3)] for i in range(3)]
        assert fraction_matrix_inverse(eye) == eye

    def test_known_inverse(self):
        mat = [[Fraction(2), Fraction(0)], [Fraction(0), Fraction(4)]]
        inv = fraction_matrix_inverse(mat)
        assert inv[0][0] == Fraction(1, 2)
        assert inv[1][1] == Fraction(1, 4)

    def test_singular_raises(self):
        mat = [[Fraction(1), Fraction(1)], [Fraction(1), Fraction(1)]]
        with pytest.raises(TransformError):
            fraction_matrix_inverse(mat)

    def test_product_is_identity(self):
        mat = [
            [Fraction(1), Fraction(2), Fraction(0)],
            [Fraction(0), Fraction(1), Fraction(3)],
            [Fraction(4), Fraction(0), Fraction(1)],
        ]
        inv = fraction_matrix_inverse(mat)
        prod = [
            [sum(mat[i][k] * inv[k][j] for k in range(3)) for j in range(3)]
            for i in range(3)
        ]
        assert prod == [[Fraction(int(i == j)) for j in range(3)] for i in range(3)]


class TestCookToom:
    @pytest.mark.parametrize("m,r", [(2, 3), (4, 3), (6, 3), (2, 2), (3, 2), (4, 5), (1, 3), (5, 1)])
    def test_exact_correlation(self, m, r):
        at, g_mat, bt = cook_toom_1d(m, r)
        rng = np.random.default_rng(m * 10 + r)
        d = rng.integers(-100, 100, size=m + r - 1).astype(object)
        g = rng.integers(-100, 100, size=r).astype(object)
        result = at @ ((g_mat @ g) * (bt @ d))
        expected = correlation(g, d, m)
        assert [Fraction(v) for v in result] == [Fraction(v) for v in expected]

    def test_degenerate_f11(self):
        at, g_mat, bt = cook_toom_1d(1, 1)
        assert at[0][0] == 1 and g_mat[0][0] == 1 and bt[0][0] == 1

    def test_mul_count_is_minimal(self):
        """F(m, r) uses exactly m + r - 1 element-wise multiplications."""
        for m, r in [(2, 3), (4, 3), (3, 2)]:
            at, g_mat, bt = cook_toom_1d(m, r)
            assert at.shape == (m, m + r - 1)
            assert g_mat.shape == (m + r - 1, r)
            assert bt.shape == (m + r - 1, m + r - 1)

    def test_rejects_bad_sizes(self):
        with pytest.raises(TransformError):
            cook_toom_1d(0, 3)

    def test_rejects_duplicate_points(self):
        with pytest.raises(TransformError):
            cook_toom_1d(2, 3, points=[Fraction(1), Fraction(1)])

    def test_rejects_wrong_point_count(self):
        with pytest.raises(TransformError):
            cook_toom_1d(2, 3, points=[Fraction(0)])

    @settings(max_examples=20, deadline=None)
    @given(m=st.integers(1, 5), r=st.integers(1, 4), seed=st.integers(0, 100))
    def test_exact_correlation_hypothesis(self, m, r, seed):
        at, g_mat, bt = cook_toom_1d(m, r)
        rng = np.random.default_rng(seed)
        d = rng.integers(-1000, 1000, size=m + r - 1).astype(object)
        g = rng.integers(-1000, 1000, size=r).astype(object)
        result = at @ ((g_mat @ g) * (bt @ d))
        assert [Fraction(v) for v in result] == [
            Fraction(v) for v in correlation(g, d, m)
        ]


class TestDefaultPoints:
    def test_distinct(self):
        pts = default_points(9)
        assert len(set(pts)) == 9

    def test_too_many_raises(self):
        with pytest.raises(TransformError):
            default_points(100)


class TestScaleToInteger:
    def test_scales_fractions(self):
        mat = np.array([[Fraction(1, 2), Fraction(1, 3)]], dtype=object)
        scaled, s = scale_to_integer(mat)
        assert s == 6
        assert scaled.tolist() == [[3, 2]]

    def test_integer_matrix_scale_one(self):
        mat = np.array([[Fraction(2), Fraction(-1)]], dtype=object)
        scaled, s = scale_to_integer(mat)
        assert s == 1
        assert scaled.tolist() == [[2, -1]]
