"""Tests for the DWM decomposition: exact equivalence with direct conv."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.utils.im2col import conv_output_size, im2col, pad_nchw
from repro.winograd import get_transform, transform_filter_int, winograd_conv2d_int
from repro.winograd.decompose import (
    decompose_conv,
    extract_sub_input,
    extract_sub_kernel,
)


def direct_conv_int(x, w, stride, padding):
    n, c, h, wd = x.shape
    k, _, r, s = w.shape
    cols = im2col(x, (r, s), stride, padding)
    p = conv_output_size(h, r, stride, padding)
    q = conv_output_size(wd, s, stride, padding)
    return np.einsum("kr,nrp->nkp", w.reshape(k, -1), cols).reshape(n, k, p, q)


def dwm_conv_int(x, w, stride, padding, m=2):
    """Full DWM pipeline: decompose, winograd each piece, sum."""
    tf = get_transform(m, 3)
    k, c, r, s = w.shape
    n, _, h, wd = x.shape
    out_h = conv_output_size(h, r, stride, padding)
    out_w = conv_output_size(wd, s, stride, padding)
    xp = pad_nchw(x, padding)
    total = None
    for spec in decompose_conv((r, s), stride):
        sub_w = extract_sub_kernel(w, spec, stride)
        view = extract_sub_input(xp, spec, stride, out_h, out_w)
        v = transform_filter_int(sub_w, tf)
        ctx = winograd_conv2d_int(view, v, padding=0, m=m)
        y = ctx.y_int[:, :, :out_h, :out_w]
        total = y if total is None else total + y
    return total // tf.output_scale_2d  # exact: total is a multiple


class TestDecomposeEnumeration:
    def test_canonical_3x3_s1_single_piece(self):
        pieces = decompose_conv((3, 3), 1)
        assert len(pieces) == 1
        assert pieces[0].taps_h == 3 and not pieces[0].is_padded

    def test_7x7_s2_piece_count(self):
        """Phases: b=0 -> 4 taps (2 chunks), b=1 -> 3 taps (1 chunk);
        3 per axis -> 9 pieces in 2-D."""
        assert len(decompose_conv((7, 7), 2)) == 9

    def test_5x5_s1_piece_count(self):
        assert len(decompose_conv((5, 5), 1)) == 4

    def test_3x3_s2_piece_count(self):
        assert len(decompose_conv((3, 3), 2)) == 4

    def test_1x1_s1(self):
        pieces = decompose_conv((1, 1), 1)
        assert len(pieces) == 1
        assert pieces[0].is_padded


class TestSubKernelExtraction:
    def test_taps_map_to_original(self, rng):
        w = rng.integers(-50, 50, size=(2, 3, 7, 7)).astype(np.int64)
        for spec in decompose_conv((7, 7), 2):
            sub = extract_sub_kernel(w, spec, 2)
            assert sub.shape == (2, 3, 3, 3)
            for ah in range(3):
                for aw in range(3):
                    src_h = 2 * (3 * spec.chunk_h + ah) + spec.phase_h
                    src_w = 2 * (3 * spec.chunk_w + aw) + spec.phase_w
                    expected = (
                        w[:, :, src_h, src_w] if src_h < 7 and src_w < 7 else 0
                    )
                    np.testing.assert_array_equal(sub[:, :, ah, aw], expected)

    def test_tap_coverage_is_complete_and_disjoint(self):
        """Every original tap appears in exactly one piece."""
        w = np.arange(49, dtype=np.int64).reshape(1, 1, 7, 7) + 1
        seen = np.zeros((7, 7), dtype=int)
        for spec in decompose_conv((7, 7), 2):
            sub = extract_sub_kernel(w, spec, 2)
            for val in sub.ravel():
                if val > 0:
                    idx = int(val) - 1
                    seen[idx // 7, idx % 7] += 1
        assert np.all(seen == 1)


class TestDwmEquivalence:
    @pytest.mark.parametrize(
        "kernel,stride,padding",
        [
            ((3, 3), 1, 1),
            ((3, 3), 2, 1),
            ((5, 5), 1, 2),
            ((7, 7), 2, 3),
            ((1, 1), 1, 0),
            ((1, 1), 2, 0),
        ],
    )
    def test_matches_direct_conv_bitwise(self, rng, kernel, stride, padding):
        x = rng.integers(-200, 200, size=(2, 3, 14, 13)).astype(np.int64)
        w = rng.integers(-200, 200, size=(4, 3, *kernel)).astype(np.int64)
        expected = direct_conv_int(x, w, stride, padding)
        result = dwm_conv_int(x, w, stride, padding)
        np.testing.assert_array_equal(result, expected)

    @settings(max_examples=15, deadline=None)
    @given(
        kernel=st.sampled_from([1, 2, 3, 4, 5, 7]),
        stride=st.integers(1, 3),
        seed=st.integers(0, 50),
    )
    def test_matches_direct_conv_hypothesis(self, kernel, stride, seed):
        rng = np.random.default_rng(seed)
        size = max(kernel + stride * 3, 10)
        x = rng.integers(-100, 100, size=(1, 2, size, size)).astype(np.int64)
        w = rng.integers(-100, 100, size=(2, 2, kernel, kernel)).astype(np.int64)
        padding = kernel // 2
        expected = direct_conv_int(x, w, stride, padding)
        result = dwm_conv_int(x, w, stride, padding)
        np.testing.assert_array_equal(result, expected)

    @pytest.mark.parametrize("m", [2, 4])
    def test_tile_size_independent(self, rng, m):
        x = rng.integers(-100, 100, size=(1, 2, 12, 12)).astype(np.int64)
        w = rng.integers(-100, 100, size=(3, 2, 5, 5)).astype(np.int64)
        expected = direct_conv_int(x, w, 1, 2)
        np.testing.assert_array_equal(dwm_conv_int(x, w, 1, 2, m=m), expected)
