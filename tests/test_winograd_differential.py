"""Differential tests: float Winograd vs direct im2col convolution.

Barabasz et al. (arXiv:1803.10986) show Winograd's numerical error grows
with the tile size; these tests pin our float64 kernels to the direct
im2col reference across randomized shapes, paddings and every supported
tile size, with tolerances tight enough to catch any algebraic slip (a
wrong transform entry produces errors many orders of magnitude larger).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.utils.im2col import conv_output_size, im2col
from repro.winograd import SUPPORTED_TILES, winograd_conv2d_float


def direct_conv_float(
    x: np.ndarray,
    w: np.ndarray,
    bias: np.ndarray | None = None,
    padding: int = 0,
) -> np.ndarray:
    """Reference float convolution via im2col (unit stride)."""
    n, c, h, wd = x.shape
    k, _, r, s = w.shape
    cols = im2col(x.astype(np.float64), (r, s), 1, padding)
    out = np.einsum("kr,nrp->nkp", w.reshape(k, -1).astype(np.float64), cols)
    p = conv_output_size(h, r, 1, padding)
    q = conv_output_size(wd, s, 1, padding)
    out = out.reshape(n, k, p, q)
    if bias is not None:
        out = out + bias.reshape(1, k, 1, 1)
    return out


def random_case(rng: np.random.Generator) -> tuple[np.ndarray, np.ndarray]:
    """One random (input, weight) pair with r=3 and workable spatial size."""
    n = int(rng.integers(1, 4))
    c = int(rng.integers(1, 6))
    k = int(rng.integers(1, 7))
    h = int(rng.integers(5, 13))
    w = int(rng.integers(5, 15))
    x = rng.standard_normal((n, c, h, w))
    wt = rng.standard_normal((k, c, 3, 3))
    return x, wt


class TestDifferentialFloat:
    @pytest.mark.parametrize("m", SUPPORTED_TILES)
    @pytest.mark.parametrize("padding", [0, 1, 2])
    @pytest.mark.parametrize("trial", range(4))
    def test_randomized_shapes(self, m, padding, trial):
        rng = np.random.default_rng(1000 * m + 100 * padding + trial)
        x, wt = random_case(rng)
        got = winograd_conv2d_float(x, wt, padding=padding, m=m)
        ref = direct_conv_float(x, wt, padding=padding)
        assert got.shape == ref.shape
        scale = max(1.0, float(np.abs(ref).max()))
        np.testing.assert_allclose(got, ref, rtol=1e-9, atol=1e-9 * scale)

    @pytest.mark.parametrize("m", SUPPORTED_TILES)
    def test_with_bias(self, m):
        rng = np.random.default_rng(42 + m)
        x, wt = random_case(rng)
        bias = rng.standard_normal(wt.shape[0])
        got = winograd_conv2d_float(x, wt, bias=bias, padding=1, m=m)
        ref = direct_conv_float(x, wt, bias=bias, padding=1)
        scale = max(1.0, float(np.abs(ref).max()))
        np.testing.assert_allclose(got, ref, rtol=1e-9, atol=1e-9 * scale)

    @pytest.mark.parametrize("m", SUPPORTED_TILES)
    def test_single_pixel_output(self, m):
        """Smallest legal output (1x1) exercises tile-overhang cropping."""
        rng = np.random.default_rng(7 * m)
        x = rng.standard_normal((1, 2, 3, 3))
        wt = rng.standard_normal((2, 2, 3, 3))
        got = winograd_conv2d_float(x, wt, padding=0, m=m)
        ref = direct_conv_float(x, wt, padding=0)
        assert got.shape == (1, 2, 1, 1)
        scale = max(1.0, float(np.abs(ref).max()))
        np.testing.assert_allclose(got, ref, rtol=1e-9, atol=1e-9 * scale)

    @pytest.mark.parametrize("m", SUPPORTED_TILES)
    def test_non_square_input(self, m):
        """Strongly rectangular inputs hit unequal tile counts per axis."""
        rng = np.random.default_rng(77 + m)
        x = rng.standard_normal((2, 3, 5, 17))
        wt = rng.standard_normal((4, 3, 3, 3))
        got = winograd_conv2d_float(x, wt, padding=1, m=m)
        ref = direct_conv_float(x, wt, padding=1)
        scale = max(1.0, float(np.abs(ref).max()))
        np.testing.assert_allclose(got, ref, rtol=1e-9, atol=1e-9 * scale)
