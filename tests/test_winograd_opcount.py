"""Tests for the primitive-operation census."""

import pytest

from repro.winograd.opcount import (
    ALL_CATEGORIES,
    OpCounts,
    linear_counts,
    standard_conv_counts,
    winograd_conv_counts,
)


class TestStandardConvCounts:
    def test_known_values(self):
        # 3x3 conv, C=4, K=8, 10x10 output: muls = 8*100*36.
        counts = standard_conv_counts(4, 8, (3, 3), (10, 10), bias=True)
        assert counts.st_mul == 8 * 100 * 36
        assert counts.st_add == 8 * 100 * 36  # (36-1) reduction adds + bias
        assert counts.wg_mul == 0

    def test_no_bias(self):
        counts = standard_conv_counts(4, 8, (3, 3), (10, 10), bias=False)
        assert counts.st_add == 8 * 100 * 35


class TestWinogradConvCounts:
    def test_mul_reduction_ratio_f23(self):
        """F(2,3) on an even output grid: 36/16 = 2.25x fewer muls."""
        st = standard_conv_counts(16, 16, (3, 3), (16, 16))
        wg = winograd_conv_counts(16, 16, (3, 3), 1, (16, 16), m=2)
        assert st.st_mul / wg.wg_mul == pytest.approx(2.25)

    def test_categories_populated(self):
        wg = winograd_conv_counts(8, 8, (3, 3), 1, (8, 8), m=2)
        assert wg.wg_input_add > 0
        assert wg.wg_acc_add > 0
        assert wg.wg_output_add > 0
        assert wg.st_mul == 0

    def test_dwm_multiplies_piece_counts(self):
        """7x7 stride 2 decomposes into 9 pieces: ~9x the per-piece census."""
        single = winograd_conv_counts(4, 4, (3, 3), 1, (8, 8), m=2)
        dwm = winograd_conv_counts(4, 4, (7, 7), 2, (8, 8), m=2)
        assert dwm.wg_mul == 9 * single.wg_mul

    def test_recombination_adds_counted(self):
        no_recomb = winograd_conv_counts(4, 4, (3, 3), 1, (8, 8), m=2, bias=False)
        with_recomb = winograd_conv_counts(4, 4, (3, 3), 2, (8, 8), m=2, bias=False)
        # stride 2 -> 4 pieces -> 3 extra adds per output.
        assert with_recomb.wg_output_add - 4 * no_recomb.wg_output_add == 3 * 4 * 64

    def test_offline_filter_adds_not_in_runtime_total(self):
        wg = winograd_conv_counts(8, 8, (3, 3), 1, (8, 8), m=2)
        assert wg.wg_filter_add_offline > 0
        assert wg.wg_filter_add_offline not in (wg.adds, wg.total)
        assert wg.total == wg.muls + wg.adds


class TestLinearCounts:
    def test_values(self):
        counts = linear_counts(128, 10)
        assert counts.st_mul == 1280
        assert counts.st_add == 10 * 128  # 127 reduction + bias per output


class TestOpCountsContainer:
    def test_addition(self):
        a = OpCounts(st_mul=1, wg_mul=2)
        b = OpCounts(st_mul=10, wg_acc_add=5)
        c = a + b
        assert c.st_mul == 11 and c.wg_mul == 2 and c.wg_acc_add == 5

    def test_by_category_covers_all(self):
        counts = OpCounts()
        assert set(counts.by_category()) == set(ALL_CATEGORIES)
