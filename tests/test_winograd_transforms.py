"""Tests for repro.winograd.transforms."""

import numpy as np
import pytest

from repro.winograd.transforms import SUPPORTED_TILES, WinogradTransform, get_transform


class TestGetTransform:
    @pytest.mark.parametrize("m", SUPPORTED_TILES)
    def test_supported_tiles_validate(self, m):
        tf = get_transform(m, 3)
        assert tf.t == m + 2
        tf.validate()  # raises on failure

    def test_cached(self):
        assert get_transform(2, 3) is get_transform(2, 3)

    def test_canonical_f23_matrices(self):
        tf = get_transform(2, 3)
        assert tf.bt_int.tolist() == [
            [1, 0, -1, 0],
            [0, 1, 1, 0],
            [0, -1, 1, 0],
            [0, 1, 0, -1],
        ]
        assert tf.g_scale == 2
        assert tf.at_scale == 1 and tf.bt_scale == 1

    def test_canonical_f43_scales(self):
        tf = get_transform(4, 3)
        assert tf.g_scale == 24
        assert tf.at_scale == 1 and tf.bt_scale == 1

    def test_integer_matrices_exact(self):
        for m in SUPPORTED_TILES:
            tf = get_transform(m, 3)
            np.testing.assert_array_equal(
                tf.at_int, np.array([[int(v * tf.at_scale) for v in row] for row in tf.at_frac])
            )

    def test_output_scale_2d(self):
        tf = get_transform(2, 3)
        assert tf.output_scale_2d == (1 * 1 * 2) ** 2 == 4


class TestOpCountMetadata:
    def test_f23_input_transform_adds(self):
        """Canonical F(2,3): each B^T row has 2 nonzeros -> 4 adds per pass
        per vector, 4 vectors per pass, 2 passes = 32 adds per tile."""
        tf = get_transform(2, 3)
        assert tf.input_transform_adds_per_tile() == 32

    def test_f23_output_transform_adds(self):
        """A^T rows have 3 nonzeros -> 2*(3-1)=4 adds per vector; pass 1
        covers t=4 vectors, pass 2 covers m=2: (4+2)*4 = 24."""
        tf = get_transform(2, 3)
        assert tf.output_transform_adds_per_tile() == 24

    def test_ewise_muls(self):
        assert get_transform(2, 3).ewise_muls_per_tile() == 16
        assert get_transform(4, 3).ewise_muls_per_tile() == 36

    def test_filter_transform_positive(self):
        assert get_transform(2, 3).filter_transform_adds() > 0


class TestFromFractionMatrices:
    def test_roundtrip_through_builder(self):
        base = get_transform(2, 3)
        rebuilt = WinogradTransform.from_fraction_matrices(
            2, 3, base.at_frac, base.g_frac, base.bt_frac
        )
        rebuilt.validate()
        assert rebuilt.output_scale_2d == base.output_scale_2d
